package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"strings"

	"repro"
	"repro/internal/atomicio"
	"repro/internal/ring"
)

// cmdRing generates or inspects a ring spec (ring.json), the single
// topology file every process of a sharded serving tier loads: replicas
// derive which shards to serve from it, routers derive where to scatter.
// With -nodes it writes a fresh spec; with -spec it loads an existing one.
// Either way it prints the resolved placement so an operator can see the
// shard → replica-group map before starting any process.
func cmdRing(_ context.Context, args []string) error {
	fs := flag.NewFlagSet("ring", flag.ExitOnError)
	nodes := fs.String("nodes", "", "comma-separated replica base URLs (e.g. http://h1:8081,http://h2:8082); names default to n0,n1,...")
	names := fs.String("names", "", "comma-separated node names overriding the n0,n1,... defaults (must match -nodes in count)")
	shards := fs.Int("shards", 3, "training-set partitions (fixed for the topology's lifetime)")
	replicas := fs.Int("replicas", 2, "replica-group size R: every shard is served by R distinct nodes")
	vnodes := fs.Int("vnodes", 0, "virtual nodes per physical node on the hash circle (0 = 64)")
	specPath := fs.String("spec", "", "inspect an existing ring.json instead of generating one")
	out := fs.String("o", "", "write the generated spec to this path (e.g. ring.json)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*nodes == "") == (*specPath == "") {
		return fmt.Errorf("ring: exactly one of -nodes or -spec is required")
	}

	var spec *repro.RingSpec
	if *specPath != "" {
		var err error
		spec, err = repro.LoadRingSpec(*specPath)
		if err != nil {
			return err
		}
	} else {
		addrs := strings.Split(*nodes, ",")
		spec = &repro.RingSpec{Shards: *shards, Replicas: *replicas, VNodes: *vnodes}
		var nn []string
		if *names != "" {
			nn = strings.Split(*names, ",")
			if len(nn) != len(addrs) {
				return fmt.Errorf("ring: -names lists %d names for %d nodes", len(nn), len(addrs))
			}
		}
		for i, addr := range addrs {
			name := fmt.Sprintf("n%d", i)
			if nn != nil {
				name = strings.TrimSpace(nn[i])
			}
			spec.Nodes = append(spec.Nodes, ring.Node{Name: name, Addr: strings.TrimSpace(addr)})
		}
	}

	r, err := ring.New(spec)
	if err != nil {
		return err
	}
	fmt.Printf("ring: %d shards x %d replicas over %d nodes\n", spec.Shards, spec.Replicas, len(spec.Nodes))
	for sh := 0; sh < spec.Shards; sh++ {
		var members []string
		for _, n := range r.ReplicaGroup(sh) {
			members = append(members, n.Name)
		}
		fmt.Printf("  shard %d -> %s\n", sh, strings.Join(members, ", "))
	}
	for _, n := range spec.Nodes {
		fmt.Printf("  node %s (%s) serves shards %v\n", n.Name, n.Addr, r.NodeShards(n.Name))
	}

	if *out != "" {
		if err := atomicio.WriteFile(*out, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", " ")
			return enc.Encode(spec)
		}); err != nil {
			return err
		}
		fmt.Println("wrote", *out)
	}
	return nil
}
