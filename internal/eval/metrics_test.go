package eval

import (
	"math"
	"testing"
)

func o(pred string, covered bool, actual ...string) Outcome {
	return Outcome{Predicted: pred, Actual: actual, Covered: covered}
}

func TestOutcomeCorrect(t *testing.T) {
	if !o("a", true, "a").Correct() {
		t.Error("exact match must be correct")
	}
	if !o("a", true, "b", "a").Correct() {
		t.Error("matching any tied label must be correct")
	}
	if o("a", true, "b").Correct() {
		t.Error("mismatch must be incorrect")
	}
	if o("a", false, "a").Correct() {
		t.Error("abstention is never correct")
	}
}

func TestComputeHandWorked(t *testing.T) {
	classes := []string{"a", "b"}
	outcomes := []Outcome{
		o("a", true, "a"), // TP for a
		o("a", true, "b"), // FP for a, FN for b
		o("b", true, "b"), // TP for b
		o("b", true, "b"), // TP for b
		o("", false, "a"), // abstained
	}
	m := Compute(outcomes, classes)
	if m.Samples != 5 || m.Predictions != 4 || m.Correct != 3 {
		t.Fatalf("tallies = %+v", m)
	}
	if math.Abs(m.Accuracy-0.75) > 1e-12 {
		t.Errorf("accuracy = %v, want 0.75", m.Accuracy)
	}
	if math.Abs(m.Coverage-0.8) > 1e-12 {
		t.Errorf("coverage = %v, want 0.8", m.Coverage)
	}
	// precision(a) = 1/2, precision(b) = 2/2 -> macroP = 0.75.
	if math.Abs(m.MacroPrecision-0.75) > 1e-12 {
		t.Errorf("macroP = %v, want 0.75", m.MacroPrecision)
	}
	// recall(a) = 1/1, recall(b) = 2/3 -> macroR = 5/6.
	if math.Abs(m.MacroRecall-5.0/6.0) > 1e-9 {
		t.Errorf("macroR = %v, want %v", m.MacroRecall, 5.0/6.0)
	}
	// f1(a) = 2·(0.5·1)/(1.5) = 2/3; f1(b) = 2·(1·2/3)/(5/3) = 0.8.
	wantF1 := (2.0/3.0 + 0.8) / 2
	if math.Abs(m.MacroF1-wantF1) > 1e-9 {
		t.Errorf("macroF1 = %v, want %v", m.MacroF1, wantF1)
	}
}

func TestComputeSkipsUndefinedClasses(t *testing.T) {
	// Single-class predictor (the Best-SM pattern): macro-precision must
	// equal its accuracy because classes never predicted are skipped.
	classes := []string{"a", "b", "c", "d"}
	outcomes := []Outcome{
		o("a", true, "a"),
		o("a", true, "a"),
		o("a", true, "b"),
		o("a", true, "c"),
	}
	m := Compute(outcomes, classes)
	if math.Abs(m.MacroPrecision-m.Accuracy) > 1e-12 {
		t.Errorf("single-class macroP %v should equal accuracy %v", m.MacroPrecision, m.Accuracy)
	}
	// recall: a=1 (2/2), b=0, c=0; d has no actuals -> skipped. macroR = 1/3.
	if math.Abs(m.MacroRecall-1.0/3.0) > 1e-9 {
		t.Errorf("macroR = %v, want 1/3", m.MacroRecall)
	}
}

func TestComputeEmptyAndAllAbstained(t *testing.T) {
	m := Compute(nil, []string{"a"})
	if m.Samples != 0 || m.Accuracy != 0 {
		t.Error("empty outcomes should zero out")
	}
	m = Compute([]Outcome{o("", false, "a")}, []string{"a"})
	if m.Coverage != 0 || m.Accuracy != 0 {
		t.Errorf("all-abstained metrics = %+v", m)
	}
}

func TestAverage(t *testing.T) {
	ms := []Metrics{
		{Accuracy: 0.5, Coverage: 1, MacroF1: 0.4},
		{Accuracy: 0.7, Coverage: 0.5, MacroF1: 0.6},
	}
	avg := Average(ms)
	if math.Abs(avg.Accuracy-0.6) > 1e-12 || math.Abs(avg.Coverage-0.75) > 1e-12 {
		t.Errorf("avg = %+v", avg)
	}
	if Average(nil).Accuracy != 0 {
		t.Error("empty average should be zero")
	}
}

func TestMetricsString(t *testing.T) {
	s := Metrics{Accuracy: 0.73}.String()
	if len(s) == 0 || s[:3] != "acc" {
		t.Errorf("String() = %q", s)
	}
}
