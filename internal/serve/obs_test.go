package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestEveryResponseCarriesRequestIDAndContentType is the response-header
// audit: every handler, on every status class it can produce — success,
// 4xx, shed-503, panic-500, even the mux's own 404 — must answer with an
// X-Request-ID and an explicit Content-Type.
func TestEveryResponseCarriesRequestIDAndContentType(t *testing.T) {
	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		status     int
		ctPrefix   string
		prep       func(t *testing.T, s *Server)
		wantHeader map[string]bool // extra headers that must be present
	}{
		{name: "healthz", method: "GET", path: "/healthz", status: 200, ctPrefix: "text/plain"},
		{name: "readyz ready", method: "GET", path: "/readyz", status: 200, ctPrefix: "text/plain"},
		{name: "readyz draining", method: "GET", path: "/readyz", status: 503, ctPrefix: "text/plain",
			prep: func(_ *testing.T, s *Server) { s.SetReady(false) }},
		{name: "metrics", method: "GET", path: "/metrics", status: 200, ctPrefix: "text/plain; version=0.0.4"},
		{name: "metrics wrong method", method: "POST", path: "/metrics", status: 405, ctPrefix: "application/json"},
		{name: "model", method: "GET", path: "/v1/model", status: 200, ctPrefix: "application/json"},
		{name: "predict ok", method: "POST", path: "/v1/predict", body: "VALID", status: 200, ctPrefix: "application/json"},
		{name: "predict wrong method", method: "GET", path: "/v1/predict", status: 405, ctPrefix: "application/json"},
		{name: "predict bad json", method: "POST", path: "/v1/predict", body: "{nope", status: 400, ctPrefix: "application/json"},
		{name: "predict missing context", method: "POST", path: "/v1/predict", body: "{}", status: 400, ctPrefix: "application/json"},
		{name: "batch over cap", method: "POST", path: "/v1/predict/batch", body: "BATCH2", status: 413, ctPrefix: "application/json",
			prep: func(_ *testing.T, s *Server) { s.opts.MaxBatch = 1 }},
		{name: "predict shed", method: "POST", path: "/v1/predict", body: "VALID", status: 503, ctPrefix: "application/json",
			prep:       func(_ *testing.T, s *Server) { s.lim.tryAcquire() },
			wantHeader: map[string]bool{"Retry-After": true}},
		{name: "reload wrong method", method: "GET", path: "/v1/admin/reload", status: 405, ctPrefix: "application/json"},
		{name: "reload no reloader", method: "POST", path: "/v1/admin/reload", status: 501, ctPrefix: "application/json"},
		{name: "candidates wrong method", method: "GET", path: "/v1/knn/candidates", status: 405, ctPrefix: "application/json"},
		{name: "candidates not sharded", method: "POST", path: "/v1/knn/candidates", body: "{}", status: 501, ctPrefix: "application/json"},
		{name: "snapshot wrong method", method: "GET", path: "/v1/admin/snapshot", status: 405, ctPrefix: "application/json"},
		{name: "snapshot not enabled", method: "POST", path: "/v1/admin/snapshot", body: "x", status: 501, ctPrefix: "application/json"},
		{name: "trace", method: "GET", path: "/v1/admin/trace", status: 200, ctPrefix: "application/json"},
		{name: "trace bad n", method: "GET", path: "/v1/admin/trace?n=zero", status: 400, ctPrefix: "application/json"},
		{name: "unknown path 404", method: "GET", path: "/nope", status: 404, ctPrefix: "text/plain"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := tinyServer(t, Options{MaxInFlight: 1})
			if tc.prep != nil {
				tc.prep(t, s)
			}
			body := tc.body
			switch body {
			case "VALID":
				body = wireBody(t, false, trainCtx("q", 1))
			case "BATCH2":
				body = wireBody(t, true, trainCtx("q1", 1), trainCtx("q2", 2))
			}
			req := httptest.NewRequest(tc.method, tc.path, strings.NewReader(body))
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, req)
			if rec.Code != tc.status {
				t.Fatalf("status = %d, want %d (body %s)", rec.Code, tc.status, rec.Body)
			}
			if id := rec.Header().Get("X-Request-ID"); id == "" {
				t.Error("response missing X-Request-ID")
			}
			if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, tc.ctPrefix) {
				t.Errorf("Content-Type = %q, want prefix %q", ct, tc.ctPrefix)
			}
			for h := range tc.wantHeader {
				if rec.Header().Get(h) == "" {
					t.Errorf("response missing %s header", h)
				}
			}
		})
	}
}

// TestPanic500CarriesHeaders pins the hardest header path: a panicking
// prediction must still answer 500 with both headers set (a nil
// classifier makes the predict call itself panic).
func TestPanic500CarriesHeaders(t *testing.T) {
	s := tinyServer(t, Options{})
	s.cur.Store(&activeModel{clf: nil, gen: 1})
	rec := post(t, s.Handler(), "/v1/predict", wireBody(t, false, trainCtx("q", 1)))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 (body %s)", rec.Code, rec.Body)
	}
	if rec.Header().Get("X-Request-ID") == "" {
		t.Error("panic-500 missing X-Request-ID")
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("panic-500 Content-Type = %q", ct)
	}
}

// TestRequestIDPropagation: a caller-supplied X-Request-ID is echoed on
// the response and names the trace in the ring, so client logs join
// server traces on one key.
func TestRequestIDPropagation(t *testing.T) {
	s := tinyServer(t, Options{})
	req := httptest.NewRequest(http.MethodPost, "/v1/predict",
		strings.NewReader(wireBody(t, false, trainCtx("q", 1))))
	req.Header.Set("X-Request-ID", "caller-chose-this")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-ID"); got != "caller-chose-this" {
		t.Fatalf("response id = %q, want the caller's", got)
	}
	recs := s.trace.traces.Snapshot(0)
	if len(recs) != 1 || recs[0].ID != "caller-chose-this" {
		t.Fatalf("ring traces = %+v, want one trace with the caller's id", recs)
	}
}

// TestTraceEndpointShowsStageBreakdown issues a prediction and reads it
// back from /v1/admin/trace: the per-stage timings, candidate counts and
// distance-eval counts recorded on the way through must be there.
func TestTraceEndpointShowsStageBreakdown(t *testing.T) {
	s := tinyServer(t, Options{})
	h := s.Handler()
	if rec := post(t, h, "/v1/predict", wireBody(t, false, trainCtx("q", 1))); rec.Code != 200 {
		t.Fatalf("predict: %d %s", rec.Code, rec.Body)
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/admin/trace", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("trace endpoint: %d %s", rec.Code, rec.Body)
	}
	var resp struct {
		Capacity int               `json:"capacity"`
		Traces   []obs.TraceRecord `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Capacity < 1 || len(resp.Traces) != 1 {
		t.Fatalf("trace log = %+v, want exactly the predict trace", resp)
	}
	tr := resp.Traces[0]
	if tr.Op != "POST /v1/predict" || tr.Status != 200 || tr.ID == "" || tr.TotalNS == 0 {
		t.Fatalf("trace envelope wrong: %+v", tr)
	}
	stages := map[string]bool{}
	for _, st := range tr.Stages {
		stages[st.Name] = true
	}
	for _, want := range []string{"serve.predict", "serve.decode", "serve.encode", "knn.predict_all"} {
		if !stages[want] {
			t.Errorf("trace missing stage %q (got %v)", want, tr.Stages)
		}
	}
	if tr.Candidates < 1 || tr.DistanceEvals < 1 {
		t.Errorf("scan-cost annotations missing: candidates=%d dist_evals=%d", tr.Candidates, tr.DistanceEvals)
	}

	// The trace endpoint itself must not appear in the ring (a prober
	// would evict the traces an operator came to read).
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/v1/admin/trace", nil))
	if got := len(s.trace.traces.Snapshot(0)); got != 1 {
		t.Errorf("trace reads leaked into the ring: %d traces", got)
	}
}

// TestTraceRingHonorsCapAndShedRung: the ring evicts oldest beyond
// Options.TraceRing, and a shed request's trace carries the serve.shed
// rung with its 503.
func TestTraceRingHonorsCapAndShedRung(t *testing.T) {
	s := tinyServer(t, Options{MaxInFlight: 1, TraceRing: 2})
	h := s.Handler()
	s.lim.tryAcquire() // saturate: every predict sheds
	for i := 0; i < 5; i++ {
		if rec := post(t, h, "/v1/predict", wireBody(t, false, trainCtx("q", i+1))); rec.Code != 503 {
			t.Fatalf("want shed 503, got %d", rec.Code)
		}
	}
	recs := s.trace.traces.Snapshot(0)
	if len(recs) != 2 {
		t.Fatalf("ring holds %d traces, want cap 2", len(recs))
	}
	for _, tr := range recs {
		if tr.Status != 503 || tr.Rungs["serve.shed"] != 1 {
			t.Errorf("shed trace = %+v, want 503 with serve.shed rung", tr)
		}
	}
}

// TestMetricsEndpointIsStrictPrometheus scrapes /metrics after live
// traffic and validates the full exposition with the strict parser; the
// surface must include the build-info series, serving counters, latency
// summaries, and a zero-valued series for every registered fault site.
func TestMetricsEndpointIsStrictPrometheus(t *testing.T) {
	s := tinyServer(t, Options{})
	h := s.Handler()
	for i := 0; i < 3; i++ {
		post(t, h, "/v1/predict", wireBody(t, false, trainCtx("q", i+1)))
	}
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("/metrics: %d %s", rec.Code, rec.Body)
	}
	body := rec.Body.String()
	if err := obs.ValidatePrometheus(bytes.NewReader(rec.Body.Bytes())); err != nil {
		t.Fatalf("/metrics is not strict Prometheus text:\n%v", err)
	}
	for _, want := range []string{
		"idarepro_build_info{",
		"idarepro_serve_requests_total",
		`idarepro_faults_injected_total{site="serve.predict"}`,
		`idarepro_faults_injected_total{site="knn.scan"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestAccessLogWritesJSONL: with Options.AccessLog set, each completed
// /v1/* request appends one parseable JSON trace record.
func TestAccessLogWritesJSONL(t *testing.T) {
	var buf bytes.Buffer
	s := tinyServer(t, Options{AccessLog: &buf})
	h := s.Handler()
	post(t, h, "/v1/predict", wireBody(t, false, trainCtx("q", 1)))
	post(t, h, "/v1/predict", wireBody(t, false, trainCtx("q", 2)))
	// Non-/v1 traffic stays out of the access log.
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/healthz", nil))

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("access log holds %d lines, want 2:\n%s", len(lines), buf.String())
	}
	for i, line := range lines {
		var rec obs.TraceRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d is not JSON: %v", i, err)
		}
		if rec.Op != "POST /v1/predict" || rec.Status != 200 || rec.ID == "" {
			t.Errorf("line %d = %+v", i, rec)
		}
	}
}

// TestModelReportsBuild: /v1/model must stamp the serving binary.
func TestModelReportsBuild(t *testing.T) {
	s := tinyServer(t, Options{})
	req := httptest.NewRequest(http.MethodGet, "/v1/model", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	var st ModelStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Build.GoVersion == "" || st.Build.Version == "" {
		t.Fatalf("model status missing build info: %+v", st.Build)
	}
}
