package offline

import (
	"context"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/measures"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/pipeline"
	"repro/internal/session"
	"repro/internal/stats"
)

// Telemetry handles for the Reference-Based pass: how many reference sets
// were enumerated, how many alternative actions they contained, how the
// per-(parent, action) execution cache behaved, and how many actions were
// skipped for lacking a meaningful comparison base. The last three count
// the degradation ladder at work: executions that overran the RefBudget,
// executions lost to faults (injected or recovered panics) after retries,
// and actions rescued by the normalized-comparison fallback rung.
var (
	mRefSets       = obs.C("offline.ref.sets")
	mRefActions    = obs.C("offline.ref.actions")
	mRefExecs      = obs.C("offline.ref.executions")
	mRefExecCached = obs.C("offline.ref.exec_cache_hits")
	mRefDegenerate = obs.C("offline.ref.degenerate")
	mRefTooFew     = obs.C("offline.ref.skipped_too_few")
	mRefBudget     = obs.C("offline.ref.budget_exceeded")
	mRefAbnormal   = obs.C("offline.ref.exec_faulted")
	mRefFallback   = obs.C("offline.ref.fallback_normalized")
)

// refPool holds the distinct recorded actions of one dataset, partitioned
// by action type; the Reference-Based method draws an action's alternatives
// R(q) from the pool of its own type (Section 4.1: "we considered all
// actions in the databases from the same type").
type refPool struct {
	byType map[engine.ActionType][]*engine.Action
}

// buildRefPools collects the distinct actions of each dataset.
func buildRefPools(repo *session.Repository) map[string]*refPool {
	pools := make(map[string]*refPool)
	seen := make(map[string]map[string]bool)
	for _, s := range repo.Sessions() {
		p := pools[s.Dataset]
		if p == nil {
			p = &refPool{byType: make(map[engine.ActionType][]*engine.Action)}
			pools[s.Dataset] = p
			seen[s.Dataset] = make(map[string]bool)
		}
		for _, n := range s.Nodes()[1:] {
			key := n.Action.String()
			if seen[s.Dataset][key] {
				continue
			}
			seen[s.Dataset][key] = true
			p.byType[n.Action.Type] = append(p.byType[n.Action.Type], n.Action.Clone())
		}
	}
	// Deterministic order within each type.
	for _, p := range pools {
		for t := range p.byType {
			as := p.byType[t]
			sort.Slice(as, func(i, j int) bool { return as[i].String() < as[j].String() })
		}
	}
	return pools
}

// referenceSet returns R(q) for one examined action: same-type recorded
// actions, excluding q itself, deterministically subsampled to limit when
// limit > 0.
func (p *refPool) referenceSet(q *engine.Action, limit int, rng *stats.RNG) []*engine.Action {
	all := p.byType[q.Type]
	out := make([]*engine.Action, 0, len(all))
	qs := q.String()
	for _, a := range all {
		if a.String() != qs {
			out = append(out, a)
		}
	}
	if limit > 0 && len(out) > limit {
		idx := rng.Perm(len(out))[:limit]
		sort.Ints(idx)
		sampled := make([]*engine.Action, limit)
		for i, j := range idx {
			sampled[i] = out[j]
		}
		out = sampled
	}
	return out
}

// MinReferenceSet is the minimal number of scored reference actions the
// Reference-Based comparison needs before it issues a verdict for an
// action.
const MinReferenceSet = 5

// execCacheKey identifies an (parent display, action) execution.
type execCacheKey struct {
	parent *engine.Display
	action string
}

// execCache is the concurrent per-(parent, action) execution cache. A
// miss claims the key with an in-flight entry so concurrent workers
// needing the same reference execution wait for the first computation
// instead of duplicating it (the same singleflight discipline as
// distance.Memo). Values are deterministic pure functions of the key, so
// which worker computes an entry never affects the scores.
type execCache struct {
	mu sync.Mutex
	m  map[execCacheKey]*execEntry
}

type execEntry struct {
	done   chan struct{}
	scores map[string]float64 // nil for failed/degenerate executions
	// abnormal marks a nil result caused by something other than the
	// data itself — an exhausted fault-retry budget, a recovered panic,
	// or a blown RefBudget. Natural degeneracy (execution error, <2
	// rows) is not abnormal: those references were always silently
	// omitted, and keeping the distinction is what lets the fallback
	// rung fire only under abnormal conditions while the fault-free
	// path stays bit-identical.
	abnormal bool
}

// get returns the cached scores for key, computing them via compute on
// first demand.
func (c *execCache) get(key execCacheKey, compute func() (map[string]float64, bool)) (map[string]float64, bool) {
	c.mu.Lock()
	if e, ok := c.m[key]; ok {
		c.mu.Unlock()
		<-e.done
		mRefExecCached.Inc()
		return e.scores, e.abnormal
	}
	e := &execEntry{done: make(chan struct{})}
	c.m[key] = e
	c.mu.Unlock()
	// Close unconditionally so waiters can never deadlock, even if
	// compute panics out from under us.
	defer close(e.done)
	e.scores, e.abnormal = compute()
	return e.scores, e.abnormal
}

// refTimings accumulates the Table-3 component costs across workers. The
// sums are per-item durations added atomically, so under fan-out they
// approximate total CPU time spent (the sequential path's wall-clock
// equivalent), not elapsed wall-clock.
type refTimings struct {
	execNS    atomic.Int64
	calcINS   atomic.Int64
	calcRelNS atomic.Int64
}

// applyReferenceBased runs Algorithm 1 for every recorded action, filling
// NodeScores.RefRelative. Reference executions are cached per
// (parent display, action) because many recorded actions share parents
// (most sessions branch from the root display).
//
// The pass runs in two phases so it parallelizes without changing a
// single output bit: phase 1 walks the nodes in repository order drawing
// every reference set from the one shared RNG stream (subsampling is the
// only stateful step, and it is cheap); phase 2 fans the expensive
// execute-score-rank work out across the pool, with each node writing
// only its own RefRelative map.
func applyReferenceBased(ctx context.Context, a *Analysis, opts Options) error {
	pools := buildRefPools(a.Repo)
	rng := stats.NewRNG(opts.Seed + 0x5EED)
	minRefs := opts.MinRefs
	if minRefs <= 0 {
		minRefs = MinReferenceSet
	}

	type nodeWork struct {
		ns   *NodeScores
		idx  int // position in a.Nodes — the index every checkpoint stage shares
		refs []*engine.Action
	}
	work := make([]nodeWork, 0, len(a.Nodes))
	for i, ns := range a.Nodes {
		pool := pools[ns.Session.Dataset]
		if pool == nil {
			continue
		}
		refs := pool.referenceSet(ns.Node.Action, opts.RefLimit, rng)
		mRefSets.Inc()
		mRefActions.Add(uint64(len(refs)))
		work = append(work, nodeWork{ns: ns, idx: i, refs: refs})
	}

	// Resume bookkeeping. Phase 1 above always re-runs in full — the RNG
	// draws are cheap and keeping them sequential is what makes every
	// reference set identical across runs — so a checkpointed node's
	// restored RefRelative map is exactly what this run would recompute.
	ck := a.Checkpoint
	rc := loadRefStage(ck, len(a.Nodes))
	every := opts.CheckpointEvery
	if every < 1 {
		every = defaultCheckpointEvery
	}
	pending := make([]nodeWork, 0, len(work))
	restored := 0
	for _, w := range work {
		if rc.Done[w.idx] {
			m := rc.Rel[w.idx]
			if m == nil {
				m = map[string]float64{}
			}
			w.ns.RefRelative = m
			restored++
			continue
		}
		pending = append(pending, w)
	}
	if restored > 0 {
		mCkptNodesSkipped.Add(uint64(restored))
	}
	var (
		ckMu       sync.Mutex
		completed  = restored
		sinceFlush = 0
	)
	record := func(w nodeWork) {
		if ck == nil {
			return
		}
		// The node's RefRelative map is final once its worker reaches
		// here, so storing the reference is safe; the periodic Update
		// marshals only completed nodes' maps.
		ckMu.Lock()
		defer ckMu.Unlock()
		rc.Done[w.idx] = true
		rc.Rel[w.idx] = w.ns.RefRelative
		completed++
		sinceFlush++
		if sinceFlush >= every {
			sinceFlush = 0
			_ = ck.Update(ckptStageRef, checkpoint.Progress{Done: completed, Total: len(work)}, rc)
		}
	}

	cache := &execCache{m: make(map[execCacheKey]*execEntry)}
	var tm refTimings
	done, err := parallel.ForEachN(ctx, len(pending), opts.Workers, func(wi int) {
		rankReferenceSet(ctx, a, pending[wi].ns, pending[wi].refs, minRefs, opts.RefBudget, cache, &tm)
		// A cancellation that lands mid-node makes executeAndScore count
		// its remaining references as abnormal losses, so the node's map
		// is shaped by *when* the context died — poison for a resumed run
		// that must be bit-identical to an uninterrupted one. Cancellation
		// is monotone: ctx.Err() still nil here proves the whole node ran
		// under a live context, and only such nodes may be checkpointed.
		if ctx == nil || ctx.Err() == nil {
			record(pending[wi])
		}
	})
	a.RefTimings.ActionExecution += time.Duration(tm.execNS.Load())
	a.RefTimings.CalcInterestingness += time.Duration(tm.calcINS.Load())
	a.RefTimings.CalcRelative += time.Duration(tm.calcRelNS.Load())
	if ck != nil {
		// Flush whatever completed — on the error path too, so an
		// interrupted run leaves its maximal resumable progress behind.
		ckMu.Lock()
		_ = ck.Update(ckptStageRef,
			checkpoint.Progress{Done: completed, Total: len(work), Complete: err == nil}, rc)
		_ = ck.Sync()
		ckMu.Unlock()
	}
	return pipeline.Wrap("offline.reference", restored+done, len(work), err)
}

// rankReferenceSet runs Algorithm 1 for one recorded action.
func rankReferenceSet(ctx context.Context, a *Analysis, ns *NodeScores, refs []*engine.Action, minRefs int, budget time.Duration, cache *execCache, tm *refTimings) {
	parent := ns.Node.Parent.Display
	root := ns.Session.Root().Display

	// Lines 1-4: execute every reference action from the same parent
	// display and score it with every measure. abnormal counts the
	// references lost to faults or budget overruns (as opposed to
	// naturally degenerate ones): they decide below whether a
	// too-small comparison base falls back or, as always, skips.
	refScores := make([]map[string]float64, 0, len(refs))
	abnormal := 0
	for _, ra := range refs {
		scores, bad := cache.get(execCacheKey{parent: parent, action: ra.String()}, func() (map[string]float64, bool) {
			return executeAndScore(ctx, a, ns.Session.Dataset, parent, root, ra, budget, tm)
		})
		if scores != nil {
			refScores = append(refScores, scores)
		} else if bad {
			abnormal++
		}
	}

	// Line 7: relative interestingness = the percentile rank of q's
	// score among the reference actions (the scale of the paper's
	// θ_I threshold for this method). Algorithm 1 counts
	// |{q' : i(q') <= i(q)}|; with small discrete displays exact
	// score collisions are frequent, so we count ties at half weight
	// (midrank) — with continuous scores the two definitions
	// coincide, and midranking prevents every measure that happens
	// to collide with all references from inflating to rank 1.0.
	// An action with too few executable, non-degenerate alternatives
	// has no meaningful comparison base (a percentile over two or
	// three references is dominated by quantization noise): it keeps
	// an empty RefRelative map and yields no dominant measure, so
	// training-set construction and the Figure-3 statistics skip it.
	// Compare the paper's omission of reference actions whose results
	// have fewer than two rows; its reference sets averaged 115
	// alternatives, so this floor never binds on REACT-IDA-scale data.
	if len(refScores) < minRefs {
		// Degradation ladder, rung 1 (DESIGN.md §7): when the comparison
		// base was eroded by abnormal losses — injected faults, recovered
		// panics, blown execution budgets — rather than by the data
		// itself, fall back to the Normalized method's verdict, mapped
		// onto the Reference-Based [0, 1] percentile scale through the
		// standard normal CDF (the z-score's own percentile under
		// normality, which is exactly what Algorithm 2's Box-Cox step
		// works to make plausible). Naturally thin reference sets keep
		// the historical skip so fault-free outputs stay bit-identical.
		if abnormal > 0 {
			mRefFallback.Inc()
			for name, z := range ns.NormRelative {
				ns.RefRelative[name] = stats.NormalCDF(z)
			}
			return
		}
		mRefTooFew.Inc()
		return
	}
	t2 := time.Now()
	for name, qScore := range ns.Raw {
		below, equal := 0, 0
		var sum, sumSq float64
		for _, rs := range refScores {
			v := rs[name]
			switch {
			case v < qScore:
				below++
			case v == qScore:
				equal++
			}
			sum += v
			sumSq += v * v
		}
		rank := (float64(below) + 0.5*float64(equal)) / float64(len(refScores))
		// Percentile ranks are coarse (multiples of 1/|R(q)|), so a
		// measure that beats every reference in two facets produces
		// an exact cross-measure tie at 1.0. A microscopic margin
		// term — how many reference standard deviations q sits above
		// the reference mean, squashed to (-1, 1) and scaled by 1e-6
		// — breaks such ties by "how decisively" the measure ranks q
		// first, without perceptibly moving the θ_I scale.
		n := float64(len(refScores))
		mean := sum / n
		variance := sumSq/n - mean*mean
		if variance < 0 {
			variance = 0
		}
		z := 0.0
		if sd := math.Sqrt(variance); sd > 0 {
			z = (qScore - mean) / sd
		}
		ns.RefRelative[name] = rank + 1e-6*z/(1+math.Abs(z))
	}
	tm.calcRelNS.Add(int64(time.Since(t2)))
}

// executeAndScore runs one reference action and scores it, updating the
// Table-3 timing buckets. It returns (nil, false) for naturally failed
// executions and degenerate results (fewer than two rows), which the
// paper omits from reference sets, and (nil, true) for abnormal losses:
// injected faults that survive the retry policy, panics recovered inside
// the execution, and executions that overran the per-action budget.
func executeAndScore(ctx context.Context, a *Analysis, dataset string, parent, root *engine.Display, ra *engine.Action, budget time.Duration, tm *refTimings) (map[string]float64, bool) {
	// The probe key is content — dataset, parent cardinality, action
	// text — never pointers or call order, so the same executions fault
	// at every worker count and the chaos equivalence tests hold.
	var base string
	injecting := faults.Enabled()
	if injecting {
		base = dataset + "|" + strconv.Itoa(parent.NumRows()) + "|" + ra.String()
	}
	var scores map[string]float64
	var overBudget bool
	err := faults.DefaultRetry.Do(ctx, func(attempt int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = pipeline.Recovered(faults.SiteRefExecute, r)
			}
		}()
		if injecting {
			if err := faults.Inject(faults.SiteRefExecute, faults.Key(base, attempt), faults.KindAll); err != nil {
				return err
			}
		}
		mRefExecs.Inc()
		t0 := time.Now()
		d, execErr := engine.Execute(parent, ra)
		elapsed := time.Since(t0)
		tm.execNS.Add(int64(elapsed))
		if budget > 0 && elapsed > budget {
			mRefBudget.Inc()
			overBudget = true
			scores = nil
			return nil
		}
		if execErr != nil || d.NumRows() < 2 {
			mRefDegenerate.Inc()
			scores = nil
			return nil
		}
		t1 := time.Now()
		mctx := &measures.Context{Action: ra, Display: d, Parent: parent, Root: root}
		scores = make(map[string]float64, len(a.Measures))
		for _, m := range a.Measures {
			scores[m.Name()] = measures.ObservedScore(m, mctx)
		}
		tm.calcINS.Add(int64(time.Since(t1)))
		return nil
	})
	if err != nil {
		mRefAbnormal.Inc()
		return nil, true
	}
	return scores, overBudget
}
