package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/atomicio"
)

// kindsPrefix marks the schema row WriteCSV emits below the header. A data
// cell in the first column that could be mistaken for it is escaped with
// one extra '#' on write and unescaped on read (see escapeSentinel).
const kindsPrefix = "#kinds:"

// WriteCSV encodes the table as CSV. The first header row carries column
// names, the second carries column kinds ("#kinds:" prefix in first cell)
// so that ReadCSV can reconstruct the schema losslessly. First-column data
// cells that collide with the sentinel ("#kinds:...", or an already
// escaped "##kinds:...") gain one leading '#' so the round trip is
// unambiguous.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	schema := t.Schema()
	if err := cw.Write(schema.Names()); err != nil {
		return fmt.Errorf("dataset: write csv header: %w", err)
	}
	kinds := make([]string, len(schema))
	for i, f := range schema {
		kinds[i] = f.Kind.String()
	}
	if len(kinds) > 0 {
		kinds[0] = kindsPrefix + kinds[0]
	}
	if err := cw.Write(kinds); err != nil {
		return fmt.Errorf("dataset: write csv kinds: %w", err)
	}
	row := make([]string, len(schema))
	for i := 0; i < t.NumRows(); i++ {
		for j := range schema {
			row[j] = t.Cell(i, j).String()
		}
		if len(row) > 0 {
			row[0] = escapeSentinel(row[0])
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: write csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// hasSentinelShape reports whether the cell is "#kinds:..." behind zero or
// more additional leading '#' (the escape alphabet).
func hasSentinelShape(cell string) bool {
	return strings.HasPrefix(strings.TrimLeft(cell, "#"), "kinds:") && strings.HasPrefix(cell, "#")
}

// escapeSentinel protects a first-column data cell from being read back as
// the kinds row by prepending one '#'; unescapeSentinel strips it again.
func escapeSentinel(cell string) string {
	if hasSentinelShape(cell) {
		return "#" + cell
	}
	return cell
}

func unescapeSentinel(cell string) string {
	if hasSentinelShape(cell) && strings.HasPrefix(cell, "##") {
		return cell[1:]
	}
	return cell
}

// ReadCSV decodes a table written by WriteCSV. The name parameter becomes
// the table name. The second row is consumed as the schema row only when it
// carries the "#kinds:" sentinel in its first cell, matches the header
// width, and every field parses as a column kind; otherwise it is ordinary
// data — a schema-less CSV whose first data cell legitimately begins with
// "#kinds:" is no longer swallowed (or rejected) as a kinds row. Without a
// schema row all columns are treated as strings.
func ReadCSV(r io.Reader, name string) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: read csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dataset: read csv: empty input")
	}
	header := records[0]
	body := records[1:]
	schema := make(Schema, len(header))
	for i, h := range header {
		// An empty column name cannot survive the write→read round trip
		// (encoding/csv emits a lone empty field as a blank line, which the
		// reader then skips), so treat it as a malformed header up front.
		if h == "" {
			return nil, fmt.Errorf("dataset: read csv: empty column name at header position %d", i)
		}
		schema[i] = Field{Name: h, Kind: KindString}
	}
	if kinds, ok := parseKindsRow(body, header); ok {
		body = body[1:]
		for i, k := range kinds {
			schema[i].Kind = k
		}
	}
	b := NewBuilder(name, schema)
	vals := make([]Value, len(schema))
	for ri, rec := range body {
		if len(rec) != len(schema) {
			return nil, fmt.Errorf("dataset: read csv: row %d has %d fields, want %d", ri, len(rec), len(schema))
		}
		for j, cell := range rec {
			if j == 0 {
				cell = unescapeSentinel(cell)
			}
			v, err := ParseValue(schema[j].Kind, cell)
			if err != nil {
				return nil, fmt.Errorf("dataset: read csv: row %d col %q: %w", ri, schema[j].Name, err)
			}
			vals[j] = v
		}
		b.Append(vals...)
	}
	return b.Build()
}

// parseKindsRow decides whether the first body row is the schema row and,
// if so, returns the parsed kinds. The row qualifies only when all three
// hold: its first cell starts with exactly the "#kinds:" sentinel (a
// doubled "##kinds:" is an escaped data cell), its width matches the
// header, and every field parses as a kind.
func parseKindsRow(body [][]string, header []string) ([]Kind, bool) {
	if len(body) == 0 || len(body[0]) == 0 {
		return nil, false
	}
	first := body[0][0]
	if !strings.HasPrefix(first, kindsPrefix) {
		return nil, false
	}
	if len(body[0]) != len(header) {
		return nil, false
	}
	kinds := make([]Kind, len(body[0]))
	for i, ks := range body[0] {
		if i == 0 {
			ks = strings.TrimPrefix(ks, kindsPrefix)
		}
		k, err := ParseKind(ks)
		if err != nil {
			return nil, false
		}
		kinds[i] = k
	}
	return kinds, true
}

// SaveCSV writes the table to a file path. The write is atomic: content
// goes to a temp file in the destination directory and is fsynced and
// renamed into place, so a crash or write error mid-save never leaves a
// truncated dataset behind (see internal/atomicio).
func SaveCSV(path string, t *Table) error {
	err := atomicio.WriteFile(path, func(w io.Writer) error {
		return WriteCSV(w, t)
	})
	if err != nil {
		return fmt.Errorf("dataset: save csv: %w", err)
	}
	return nil
}

// LoadCSV reads a table from a file path; the base name (without extension)
// becomes the table name unless name is non-empty.
func LoadCSV(path, name string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: load csv: %w", err)
	}
	defer f.Close()
	if name == "" {
		name = strings.TrimSuffix(baseName(path), ".csv")
	}
	return ReadCSV(f, name)
}

// baseName returns the final element of the path. The original
// implementation split on '/' only, so platform-foreign separators and
// trailing slashes produced wrong table names; filepath.Base handles both.
func baseName(path string) string {
	return filepath.Base(path)
}
