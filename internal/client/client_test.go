package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/distance"
	"repro/internal/faults"
	"repro/internal/knn"
	"repro/internal/offline"
	"repro/internal/serve"
	"repro/internal/session"
	"repro/internal/snapshot"
)

func trainCtx(id string, t int) *session.Context {
	return &session.Context{SessionID: id, T: t, N: 2, Size: 1, Root: &session.CtxNode{Step: t}}
}

func wire(id string, t int) *snapshot.WireContext {
	return snapshot.EncodeContext(trainCtx(id, t), nil)
}

// realServer runs an actual serve.Server over a one-sample classifier
// answering "variance".
func realServer(t *testing.T) *httptest.Server {
	t.Helper()
	sample := &offline.Sample{Context: trainCtx("train", 1), Labels: []string{"variance"}}
	clf := knn.New([]*offline.Sample{sample}, distance.NewMemoizedTreeEdit(nil), knn.Config{
		K: 1, ThetaDelta: 0.25, Workers: 1,
	})
	s := serve.New(clf, serve.ModelInfo{Method: "normalized", TrainingSize: 1, Prior: "variance"}, serve.Options{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// fastRetry keeps test retries sub-millisecond.
func fastRetry(attempts int) faults.RetryPolicy {
	return faults.RetryPolicy{Attempts: attempts, Backoff: time.Microsecond, MaxBackoff: time.Millisecond}
}

func TestPredictRoundTrip(t *testing.T) {
	ts := realServer(t)
	c, err := New(Options{BaseURL: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Predict(context.Background(), wire("q", 1))
	if err != nil {
		t.Fatal(err)
	}
	if !p.OK || p.Measure != "variance" || p.Degraded {
		t.Fatalf("predict = %+v, want covered variance", p)
	}

	batch, err := c.PredictBatch(context.Background(), []*snapshot.WireContext{wire("a", 1), wire("b", 2)})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 2 {
		t.Fatalf("batch returned %d predictions, want 2", len(batch))
	}
	for i, p := range batch {
		if !p.OK || p.Measure != "variance" {
			t.Fatalf("batch[%d] = %+v, want covered variance", i, p)
		}
	}

	st, err := c.Model(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Generation != 1 || st.Prior != "variance" {
		t.Fatalf("model status = %+v, want generation 1 prior variance", st)
	}
}

func TestRetriesTransient503(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"saturated"}`)
			return
		}
		fmt.Fprint(w, `{"measure":"variance","ok":true}`)
	}))
	defer ts.Close()

	c, err := New(Options{BaseURL: ts.URL, Retry: fastRetry(3)})
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Predict(context.Background(), wire("q", 1))
	if err != nil {
		t.Fatal(err)
	}
	if p.Measure != "variance" || calls.Load() != 2 {
		t.Fatalf("predict = %+v after %d calls, want variance after 2", p, calls.Load())
	}
	if st := c.BreakerState(); st != "closed" {
		t.Fatalf("breaker after recovered retry: %s, want closed", st)
	}
}

func TestPermanent4xxDoesNotRetryOrTrip(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":"bad context"}`)
	}))
	defer ts.Close()

	c, err := New(Options{BaseURL: ts.URL, Retry: fastRetry(3), BreakerWindow: 2, BreakerThreshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := c.Predict(context.Background(), wire("q", 1)); err == nil {
			t.Fatal("400 response did not surface as an error")
		}
	}
	if calls.Load() != 4 {
		t.Fatalf("server saw %d calls for 4 predicts, want 4 (no retries on 4xx)", calls.Load())
	}
	if st := c.BreakerState(); st != "closed" {
		t.Fatalf("breaker after 4xx streak: %s, want closed (client bugs are not outages)", st)
	}
}

func TestBreakerOpensAndDegradesToPrior(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()

	c, err := New(Options{
		BaseURL:          ts.URL,
		Retry:            fastRetry(1),
		BreakerWindow:    4,
		BreakerThreshold: 0.5,
		BreakerCooldown:  time.Hour,
		PriorLabel:       "variance",
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := c.Predict(context.Background(), wire(fmt.Sprintf("q%d", i), 1)); err == nil {
			t.Fatal("500 streak did not surface errors")
		}
	}
	if st := c.BreakerState(); st != "open" {
		t.Fatalf("breaker after failure streak: %s, want open", st)
	}

	before := calls.Load()
	p, err := c.Predict(context.Background(), wire("degraded", 1))
	if err != nil {
		t.Fatalf("open-breaker predict failed instead of degrading: %v", err)
	}
	if !p.Degraded || !p.Fallback || !p.OK || p.Measure != "variance" {
		t.Fatalf("degraded prediction = %+v, want prior variance with Degraded set", p)
	}
	if calls.Load() != before {
		t.Fatal("degraded prediction still hit the dying server")
	}

	// Batch degrades the same way, index-aligned.
	batch, err := c.PredictBatch(context.Background(), []*snapshot.WireContext{wire("a", 1), wire("b", 2)})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 2 || !batch[0].Degraded || !batch[1].Degraded {
		t.Fatalf("degraded batch = %+v, want 2 degraded priors", batch)
	}
}

func TestBreakerOpenWithoutPriorSurfaces(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()

	c, err := New(Options{
		BaseURL: ts.URL, Retry: fastRetry(1),
		BreakerWindow: 2, BreakerThreshold: 0.5, BreakerCooldown: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		c.Predict(context.Background(), wire("q", 1))
	}
	if _, err := c.Predict(context.Background(), wire("q", 1)); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker with no prior: err = %v, want ErrBreakerOpen", err)
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	var healthy atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		fmt.Fprint(w, `{"measure":"variance","ok":true}`)
	}))
	defer ts.Close()

	c, err := New(Options{
		BaseURL: ts.URL, Retry: fastRetry(1),
		BreakerWindow: 2, BreakerThreshold: 0.5, BreakerCooldown: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	clock := time.Unix(1000, 0)
	c.now = func() time.Time { return clock }

	for i := 0; i < 2; i++ {
		c.Predict(context.Background(), wire("q", 1))
	}
	if st := c.BreakerState(); st != "open" {
		t.Fatalf("breaker = %s, want open", st)
	}

	// Still inside the cooldown: refused.
	if _, err := c.Predict(context.Background(), wire("q", 1)); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("mid-cooldown predict: %v, want ErrBreakerOpen", err)
	}

	// Server heals, cooldown elapses: the single half-open probe goes
	// through and closes the breaker.
	healthy.Store(true)
	clock = clock.Add(2 * time.Minute)
	p, err := c.Predict(context.Background(), wire("probe", 1))
	if err != nil || p.Measure != "variance" {
		t.Fatalf("half-open probe = %+v, %v; want variance", p, err)
	}
	if st := c.BreakerState(); st != "closed" {
		t.Fatalf("breaker after successful probe: %s, want closed", st)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()

	c, err := New(Options{
		BaseURL: ts.URL, Retry: fastRetry(1),
		BreakerWindow: 2, BreakerThreshold: 0.5, BreakerCooldown: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	clock := time.Unix(1000, 0)
	c.now = func() time.Time { return clock }
	for i := 0; i < 2; i++ {
		c.Predict(context.Background(), wire("q", 1))
	}
	clock = clock.Add(2 * time.Minute)
	if _, err := c.Predict(context.Background(), wire("probe", 1)); err == nil {
		t.Fatal("failed probe reported success")
	}
	if st := c.BreakerState(); st != "open" {
		t.Fatalf("breaker after failed probe: %s, want open (cooldown restarted)", st)
	}
}

func TestModelLearnsPrior(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/model" {
			json.NewEncoder(w).Encode(serve.ModelStatus{
				ModelInfo: serve.ModelInfo{Method: "normalized", Prior: "osf"}, Generation: 3,
			})
			return
		}
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()

	c, err := New(Options{
		BaseURL: ts.URL, Retry: fastRetry(1),
		BreakerWindow: 2, BreakerThreshold: 0.5, BreakerCooldown: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Model(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Generation != 3 {
		t.Fatalf("generation = %d, want 3", st.Generation)
	}
	for i := 0; i < 2; i++ {
		c.Predict(context.Background(), wire("q", 1))
	}
	p, err := c.Predict(context.Background(), wire("q", 1))
	if err != nil || p.Measure != "osf" || !p.Degraded {
		t.Fatalf("degraded predict = %+v, %v; want learned prior osf", p, err)
	}
}

// TestCancelMidBackoff: a caller canceling while the retry loop sleeps
// on the server's long Retry-After hint returns promptly with the
// context error — the client never holds a dead request hostage.
func TestCancelMidBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "10")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c, err := New(Options{BaseURL: ts.URL, Retry: fastRetry(3)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	_, err = c.Predict(ctx, wire("q", 1))
	if elapsed := time.Since(t0); elapsed > 2*time.Second {
		t.Fatalf("canceled predict took %v; the 10s Retry-After hint was not interruptible", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestBudgetExhaustedStopsRetries: when the caller's remaining deadline
// cannot cover the next backoff sleep plus one full attempt, the retry
// loop stops immediately with ErrBudgetExhausted instead of launching a
// doomed attempt that dies mid-flight.
func TestBudgetExhaustedStopsRetries(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"saturated"}`)
	}))
	defer ts.Close()

	c, err := New(Options{
		BaseURL:        ts.URL,
		RequestTimeout: 5 * time.Second,
		Retry:          faults.RetryPolicy{Attempts: 3, Backoff: time.Millisecond, MaxBackoff: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Budget of 1s < 1ms sleep + 5s RequestTimeout: the first transient
	// failure must end the loop.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	t0 := time.Now()
	_, err = c.Predict(ctx, wire("q", 1))
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (no doomed retries)", got)
	}
	if elapsed := time.Since(t0); elapsed > 500*time.Millisecond {
		t.Fatalf("budget-exhausted predict took %v; should fail fast", elapsed)
	}
	// The transient cause stays inspectable through the wrapper.
	var herr interface{ StatusCode() int }
	if !errors.As(err, &herr) || herr.StatusCode() != http.StatusServiceUnavailable {
		t.Fatalf("budget error does not wrap the 503 cause: %v", err)
	}
}

// TestBudgetAllowsRetryWhenRoomy: a generous deadline leaves the retry
// behavior untouched.
func TestBudgetAllowsRetryWhenRoomy(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{"measure":"variance","ok":true}`)
	}))
	defer ts.Close()

	c, err := New(Options{BaseURL: ts.URL, RequestTimeout: time.Second, Retry: fastRetry(3)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	p, err := c.Predict(ctx, wire("q", 1))
	if err != nil {
		t.Fatal(err)
	}
	if p.Measure != "variance" || calls.Load() != 2 {
		t.Fatalf("predict = %+v after %d calls, want variance after 2", p, calls.Load())
	}
}

// TestDeadlineHeaderStamped: every attempt carries X-Deadline-Ms derived
// from its per-attempt context so servers can budget admission.
func TestDeadlineHeaderStamped(t *testing.T) {
	var sawMs atomic.Int64
	sawMs.Store(-1)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if v := r.Header.Get(serve.DeadlineHeader); v != "" {
			var ms int64
			fmt.Sscanf(v, "%d", &ms)
			sawMs.Store(ms)
		}
		fmt.Fprint(w, `{"measure":"variance","ok":true}`)
	}))
	defer ts.Close()

	c, err := New(Options{BaseURL: ts.URL, RequestTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Predict(context.Background(), wire("q", 1)); err != nil {
		t.Fatal(err)
	}
	ms := sawMs.Load()
	// The per-attempt budget is RequestTimeout (2s) minus scheduling
	// slop; anything in (0, 2000] proves the stamp is real and bounded.
	if ms <= 0 || ms > 2000 {
		t.Fatalf("X-Deadline-Ms = %d, want in (0, 2000]", ms)
	}
}

func TestInjectedFaultSite(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		fmt.Fprint(w, `{"measure":"variance","ok":true}`)
	}))
	defer ts.Close()

	faults.Enable(faults.Config{
		Prob: 1, Seed: 1, Kinds: faults.KindError,
		Sites: []string{faults.SiteClientRequest},
	})
	t.Cleanup(faults.Disable)

	c, err := New(Options{BaseURL: ts.URL, Retry: fastRetry(2), PriorLabel: "variance"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Predict(context.Background(), wire("q", 1))
	if err == nil || !faults.IsInjected(err) {
		t.Fatalf("p=1 client.request fault: err = %v, want injected", err)
	}
	if calls.Load() != 0 {
		t.Fatalf("server saw %d calls under a p=1 client fault, want 0", calls.Load())
	}

	// Disarmed, the same client recovers on the next request.
	faults.Disable()
	p, err := c.Predict(context.Background(), wire("q", 1))
	if err != nil || p.Measure != "variance" {
		t.Fatalf("post-chaos predict = %+v, %v; want variance", p, err)
	}
}

func TestConnectionRefusedRetriesAndFails(t *testing.T) {
	// A port nothing listens on: every attempt is a transport error.
	c, err := New(Options{BaseURL: "http://127.0.0.1:1", Retry: fastRetry(2)})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Predict(context.Background(), wire("q", 1))
	if err == nil {
		t.Fatal("predict against a dead port succeeded")
	}
	var te *transportError
	if !errors.As(err, &te) {
		t.Fatalf("err = %T %v, want transportError", err, err)
	}
}

func TestNewRequiresBaseURL(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("New without BaseURL succeeded")
	}
}

// TestRequestIDStableAcrossRetries: one logical request keeps one
// X-Request-ID across every retry attempt, so server-side traces join
// the attempts into one story.
func TestRequestIDStableAcrossRetries(t *testing.T) {
	var (
		calls atomic.Int64
		ids   sync.Map
	)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		ids.Store(n, r.Header.Get("X-Request-ID"))
		if n < 3 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"saturated"}`)
			return
		}
		fmt.Fprint(w, `{"measure":"variance","ok":true}`)
	}))
	defer ts.Close()

	c, err := New(Options{BaseURL: ts.URL, Retry: fastRetry(3)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Predict(context.Background(), wire("q", 1)); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 3 {
		t.Fatalf("want 3 attempts, got %d", calls.Load())
	}
	first, _ := ids.Load(int64(1))
	if first == "" {
		t.Fatal("attempts carried no X-Request-ID")
	}
	for n := int64(2); n <= 3; n++ {
		if got, _ := ids.Load(n); got != first {
			t.Fatalf("attempt %d sent id %v, attempt 1 sent %v — must be stable", n, got, first)
		}
	}

	// Two logical requests must NOT share an ID.
	calls.Store(2) // next attempt answers 200 immediately
	if _, err := c.Predict(context.Background(), wire("q", 2)); err != nil {
		t.Fatal(err)
	}
	second, _ := ids.Load(int64(3))
	if fresh, _ := ids.Load(int64(4)); fresh == second {
		t.Fatalf("two logical requests shared id %v", fresh)
	}
}

// TestErrorNamesServerRequestID: a terminal HTTP failure's error string
// carries the server-assigned request ID, the key to pull the matching
// trace from GET /v1/admin/trace.
func TestErrorNamesServerRequestID(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Request-ID", "srv-trace-42")
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":"malformed"}`)
	}))
	defer ts.Close()

	c, err := New(Options{BaseURL: ts.URL, Retry: fastRetry(2)})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Predict(context.Background(), wire("q", 1))
	if err == nil {
		t.Fatal("want error from a 400 server")
	}
	if !strings.Contains(err.Error(), "srv-trace-42") {
		t.Fatalf("error %q does not name the server request id", err)
	}
	var he *httpError
	if !errors.As(err, &he) || he.RequestID() != "srv-trace-42" {
		t.Fatalf("httpError.RequestID not carried: %v", err)
	}
}

func TestParseRetryAfterForms(t *testing.T) {
	// Fixed clock: HTTP-dates have whole-second granularity, so exact
	// expected durations need a now with no sub-second part.
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name string
		v    string
		want time.Duration
	}{
		{"empty", "", 0},
		{"delay seconds", "7", 7 * time.Second},
		{"zero seconds", "0", 0},
		{"negative seconds clamp", "-3", 0},
		{"http date future", now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second},
		{"http date past clamps", now.Add(-time.Hour).Format(http.TimeFormat), 0},
		{"http date rfc850 form", now.Add(30 * time.Second).Format("Monday, 02-Jan-06 15:04:05 GMT"), 30 * time.Second},
		{"garbage", "soon", 0},
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.v, now); got != tc.want {
			t.Errorf("%s: parseRetryAfter(%q) = %v, want %v", tc.name, tc.v, got, tc.want)
		}
	}
}

func TestRetryAfterDateHintReachesBackoff(t *testing.T) {
	// End to end: a 503 carrying the HTTP-date form must surface through
	// httpError.RetryAfterHint just like delay-seconds does.
	var when atomic.Value // string; the header the stub sends
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", when.Load().(string))
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"draining"}`)
	}))
	defer srv.Close()
	c, err := New(Options{BaseURL: srv.URL, Retry: faults.RetryPolicy{Attempts: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, form := range []string{
		"5",
		time.Now().UTC().Add(5 * time.Second).Format(http.TimeFormat),
	} {
		when.Store(form)
		_, err := c.Predict(context.Background(), wire("q", 1))
		var he *httpError
		if !errors.As(err, &he) {
			t.Fatalf("Retry-After %q: want httpError, got %v", form, err)
		}
		d, ok := he.RetryAfterHint()
		if !ok || d <= 0 || d > 5*time.Second {
			t.Fatalf("Retry-After %q: hint (%v, %v), want a positive duration <= 5s", form, d, ok)
		}
	}
}
