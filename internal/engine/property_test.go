package engine

import (
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

// randomTable builds a deterministic table from fuzz inputs: a categorical
// column with small alphabet and a numeric column.
func randomTable(cats []uint8, nums []int16) *dataset.Table {
	n := len(cats)
	if len(nums) < n {
		n = len(nums)
	}
	b := dataset.NewBuilder("fuzz", dataset.Schema{
		{Name: "cat", Kind: dataset.KindString},
		{Name: "num", Kind: dataset.KindInt},
	})
	for i := 0; i < n; i++ {
		b.Append(dataset.S(string(rune('a'+int(cats[i])%5))), dataset.I(int64(nums[i])))
	}
	return b.MustBuild()
}

// TestFilterSubsetProperty: a filter result is always a subset of its
// parent (row count and value domain).
func TestFilterSubsetProperty(t *testing.T) {
	f := func(cats []uint8, nums []int16, pivot int16) bool {
		tbl := randomTable(cats, nums)
		if tbl.NumRows() == 0 {
			return true
		}
		root := NewRootDisplay(tbl)
		d, err := Execute(root, NewFilter(Predicate{Column: "num", Op: OpGt, Operand: dataset.I(int64(pivot))}))
		if err == ErrEmptyResult {
			return true
		}
		if err != nil {
			return false
		}
		if d.NumRows() > tbl.NumRows() {
			return false
		}
		// Every surviving row satisfies the predicate.
		col := d.Table.ColumnByName("num")
		for i := 0; i < col.Len(); i++ {
			if col.Ints[i] <= int64(pivot) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestGroupCountMassProperty: group counts always sum to the parent's row
// count, and the group count never exceeds the number of rows.
func TestGroupCountMassProperty(t *testing.T) {
	f := func(cats []uint8, nums []int16) bool {
		tbl := randomTable(cats, nums)
		if tbl.NumRows() == 0 {
			return true
		}
		root := NewRootDisplay(tbl)
		d, err := Execute(root, NewGroupCount("cat"))
		if err != nil {
			return false
		}
		sum := 0.0
		for _, v := range d.AggValues() {
			sum += v
		}
		return int(sum) == tbl.NumRows() && d.NumRows() <= tbl.NumRows()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestGroupAvgBoundsProperty: per-group averages always lie within the
// parent column's [min, max].
func TestGroupAvgBoundsProperty(t *testing.T) {
	f := func(cats []uint8, nums []int16) bool {
		tbl := randomTable(cats, nums)
		if tbl.NumRows() == 0 {
			return true
		}
		var lo, hi int64
		col := tbl.ColumnByName("num")
		for i := 0; i < col.Len(); i++ {
			v := col.Ints[i]
			if i == 0 || v < lo {
				lo = v
			}
			if i == 0 || v > hi {
				hi = v
			}
		}
		root := NewRootDisplay(tbl)
		d, err := Execute(root, NewGroupAgg("cat", AggAvg, "num"))
		if err != nil {
			return false
		}
		for _, v := range d.AggValues() {
			if v < float64(lo)-1e-9 || v > float64(hi)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestFilterIdempotentProperty: applying the same equality filter twice
// changes nothing the second time.
func TestFilterIdempotentProperty(t *testing.T) {
	f := func(cats []uint8, nums []int16, pick uint8) bool {
		tbl := randomTable(cats, nums)
		if tbl.NumRows() == 0 {
			return true
		}
		root := NewRootDisplay(tbl)
		target := dataset.S(string(rune('a' + int(pick)%5)))
		a := NewFilter(Predicate{Column: "cat", Op: OpEq, Operand: target})
		d1, err := Execute(root, a)
		if err == ErrEmptyResult {
			return true
		}
		if err != nil {
			return false
		}
		d2, err := Execute(d1, a)
		if err != nil {
			return false
		}
		return d1.NumRows() == d2.NumRows()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
