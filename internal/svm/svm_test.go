package svm

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// pointsDistanceMatrix builds the pairwise Euclidean distances of 1-D
// points (an easy stand-in for "contexts with a distance metric").
func pointsDistanceMatrix(pts []float64) [][]float64 {
	n := len(pts)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			d[i][j] = math.Abs(pts[i] - pts[j])
		}
	}
	return d
}

func TestKernelProperties(t *testing.T) {
	d := pointsDistanceMatrix([]float64{0, 1, 2, 10})
	k := Kernel(d, 1)
	for i := range k {
		if math.Abs(k[i][i]-1) > 1e-12 {
			t.Errorf("diagonal k[%d][%d] = %v, want 1", i, i, k[i][i])
		}
		for j := range k {
			if k[i][j] != k[j][i] {
				t.Error("kernel must be symmetric")
			}
			if k[i][j] < 0 || k[i][j] > 1 {
				t.Errorf("kernel out of range: %v", k[i][j])
			}
		}
	}
	// Closer points have larger kernel values.
	if k[0][1] <= k[0][3] {
		t.Error("kernel must decay with distance")
	}
	// Median-heuristic sigma: must not be degenerate.
	k2 := Kernel(d, 0)
	if k2[0][1] <= 0 || k2[0][1] >= 1 {
		t.Errorf("median-sigma kernel k[0][1] = %v", k2[0][1])
	}
}

func TestKernelRowMatchesKernel(t *testing.T) {
	pts := []float64{0, 1, 2}
	d := pointsDistanceMatrix(pts)
	k := Kernel(d, 0.7)
	row := KernelRow(d[1], 0.7)
	for j := range row {
		if math.Abs(row[j]-k[1][j]) > 1e-12 {
			t.Errorf("row[%d] = %v, want %v", j, row[j], k[1][j])
		}
	}
}

func TestBinaryTrainSeparable(t *testing.T) {
	// Two well-separated 1-D clusters.
	var pts []float64
	var y []string
	rng := stats.NewRNG(3)
	for i := 0; i < 20; i++ {
		pts = append(pts, rng.Float64())
		y = append(y, "low")
	}
	for i := 0; i < 20; i++ {
		pts = append(pts, 10+rng.Float64())
		y = append(y, "high")
	}
	d := pointsDistanceMatrix(pts)
	m, err := Train(d, y, []string{"low", "high"}, Config{C: 5})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range pts {
		pred, _ := m.Predict(d[i])
		if pred == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(pts)); acc < 0.95 {
		t.Errorf("separable training accuracy = %v, want >= 0.95", acc)
	}
	// Out-of-sample queries.
	q := make([]float64, len(pts))
	for i, p := range pts {
		q[i] = math.Abs(p - 0.5)
	}
	if pred, _ := m.Predict(q); pred != "low" {
		t.Errorf("query at 0.5 predicted %s", pred)
	}
	for i, p := range pts {
		q[i] = math.Abs(p - 10.5)
	}
	if pred, _ := m.Predict(q); pred != "high" {
		t.Errorf("query at 10.5 predicted %s", pred)
	}
}

func TestMulticlassThreeClusters(t *testing.T) {
	var pts []float64
	var y []string
	rng := stats.NewRNG(4)
	centers := map[string]float64{"a": 0, "b": 5, "c": 10}
	for class, c := range centers {
		for i := 0; i < 15; i++ {
			pts = append(pts, c+0.3*rng.NormFloat64())
			y = append(y, class)
		}
	}
	d := pointsDistanceMatrix(pts)
	m, err := Train(d, y, []string{"a", "b", "c"}, Config{C: 10})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range pts {
		pred, scores := m.Predict(d[i])
		if len(scores) != 3 {
			t.Fatalf("scores = %v", scores)
		}
		if pred == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(pts)); acc < 0.9 {
		t.Errorf("3-cluster accuracy = %v", acc)
	}
	if got := m.Labels(); len(got) != 3 {
		t.Errorf("labels = %v", got)
	}
	if m.Sigma() <= 0 {
		t.Error("sigma must be positive")
	}
}

func TestTrainDegenerateClass(t *testing.T) {
	// One class absent from the labels: its binary component is constant
	// and training must not crash.
	pts := []float64{0, 1, 9, 10}
	y := []string{"a", "a", "b", "b"}
	d := pointsDistanceMatrix(pts)
	m, err := Train(d, y, []string{"a", "b", "ghost"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	pred, _ := m.Predict(d[0])
	if pred == "ghost" {
		t.Error("absent class must never win")
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, []string{"a", "b"}, Config{}); err == nil {
		t.Error("empty matrix must fail")
	}
	d := pointsDistanceMatrix([]float64{1, 2})
	if _, err := Train(d, []string{"a"}, []string{"a", "b"}, Config{}); err == nil {
		t.Error("label length mismatch must fail")
	}
	if _, err := Train(d, []string{"a", "b"}, []string{"a"}, Config{}); err == nil {
		t.Error("single class must fail")
	}
}

func TestTrainDeterminism(t *testing.T) {
	pts := []float64{0, 0.5, 1, 9, 9.5, 10}
	y := []string{"a", "a", "a", "b", "b", "b"}
	d := pointsDistanceMatrix(pts)
	m1, err := Train(d, y, []string{"a", "b"}, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(d, y, []string{"a", "b"}, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		p1, s1 := m1.Predict(d[i])
		p2, s2 := m2.Predict(d[i])
		if p1 != p2 {
			t.Fatal("same seed must give identical models")
		}
		for j := range s1 {
			if s1[j] != s2[j] {
				t.Fatal("same seed must give identical decision values")
			}
		}
	}
}
