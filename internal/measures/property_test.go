package measures

import (
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/engine"
)

// fuzzAggDisplay builds an aggregated display from fuzz weights.
func fuzzAggDisplay(weights []uint16) *engine.Display {
	b := dataset.NewBuilder("fz", dataset.Schema{
		{Name: "g", Kind: dataset.KindString},
		{Name: "count", Kind: dataset.KindFloat},
	})
	total := 0
	for i, w := range weights {
		v := float64(w%1000) + 1
		total += int(v)
		key := string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
		b.Append(dataset.S(key), dataset.F(v))
	}
	return &engine.Display{
		Table:       b.MustBuild(),
		Aggregated:  true,
		GroupColumn: "g",
		ValueColumn: "count",
		OriginRows:  total,
		CoveredRows: total,
	}
}

// TestBoundedMeasuresRangeProperty: the bounded measures always stay in
// their documented ranges, on arbitrary aggregated displays.
func TestBoundedMeasuresRangeProperty(t *testing.T) {
	bounded := []struct {
		m      Measure
		lo, hi float64
	}{
		{SimpsonMeasure{}, 0, 1},
		{SchutzMeasure{}, 0, 1},
		{MacArthurMeasure{}, 0, 1},
		{OSFMeasure{}, 0, 1},
		{LogLengthMeasure{}, 0, 1},
	}
	f := func(weights []uint16) bool {
		if len(weights) == 0 {
			return true
		}
		if len(weights) > 64 {
			weights = weights[:64]
		}
		d := fuzzAggDisplay(weights)
		ctx := &Context{Display: d}
		for _, b := range bounded {
			v := b.m.Score(ctx)
			if v < b.lo-1e-9 || v > b.hi+1e-9 {
				return false
			}
		}
		// Unbounded measures are at least non-negative.
		if (VarianceMeasure{}).Score(ctx) < 0 {
			return false
		}
		if (CompactionGainMeasure{}).Score(ctx) < 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestDiversityDispersionDualityProperty: on two-group displays, making
// the split more uneven must not decrease diversity (Simpson) and must not
// increase dispersion (Schutz) — the two facets move in opposite
// directions.
func TestDiversityDispersionDualityProperty(t *testing.T) {
	f := func(skewSeed uint8) bool {
		skewA := 50 + float64(skewSeed%50) // 50..99
		skewB := skewA + 1 + float64(skewSeed%7)
		if skewB >= 100 {
			skewB = 99.5
		}
		if skewB <= skewA {
			return true
		}
		mk := func(major float64) *Context {
			return &Context{Display: fuzzAggDisplayFloat([]float64{major, 100 - major})}
		}
		cA, cB := mk(skewA), mk(skewB)
		simpson := SimpsonMeasure{}
		schutz := SchutzMeasure{}
		if simpson.Score(cB) < simpson.Score(cA)-1e-9 {
			return false
		}
		if schutz.Score(cB) > schutz.Score(cA)+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func fuzzAggDisplayFloat(vals []float64) *engine.Display {
	b := dataset.NewBuilder("fz2", dataset.Schema{
		{Name: "g", Kind: dataset.KindString},
		{Name: "count", Kind: dataset.KindFloat},
	})
	total := 0.0
	for i, v := range vals {
		total += v
		b.Append(dataset.S(string(rune('a'+i))), dataset.F(v))
	}
	return &engine.Display{
		Table:       b.MustBuild(),
		Aggregated:  true,
		GroupColumn: "g",
		ValueColumn: "count",
		OriginRows:  int(total),
		CoveredRows: int(total),
	}
}

// TestScoreDeterminismProperty: scoring is a pure function of the display.
func TestScoreDeterminismProperty(t *testing.T) {
	f := func(weights []uint16) bool {
		if len(weights) == 0 || len(weights) > 32 {
			return true
		}
		d := fuzzAggDisplay(weights)
		for _, m := range BuiltinMeasures() {
			a := m.Score(&Context{Display: d})
			b := m.Score(&Context{Display: d})
			if a != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
