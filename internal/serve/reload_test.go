package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/distance"
	"repro/internal/knn"
	"repro/internal/offline"
	"repro/internal/session"
)

// labeledClassifier builds a one-sample classifier answering label for
// any nearby query.
func labeledClassifier(label string) *knn.Classifier {
	sample := &offline.Sample{Context: trainCtx("train", 1), Labels: []string{label}}
	return knn.New([]*offline.Sample{sample}, distance.NewMemoizedTreeEdit(nil), knn.Config{
		K: 1, ThetaDelta: 0.25, Workers: 1,
	})
}

func predictMeasure(t *testing.T, s *Server) string {
	t.Helper()
	rec := post(t, s.Handler(), "/v1/predict", wireBody(t, false, trainCtx("q", 1)))
	if rec.Code != http.StatusOK {
		t.Fatalf("predict: %d %s", rec.Code, rec.Body)
	}
	var pr predictResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &pr); err != nil {
		t.Fatal(err)
	}
	return pr.Measure
}

func TestReloadSwapsModelAtomically(t *testing.T) {
	s := tinyServer(t, Options{
		Reloader: func() (*knn.Classifier, ModelInfo, error) {
			return labeledClassifier("schutz"), ModelInfo{Method: "normalized", TrainingSize: 1}, nil
		},
	})
	if got := predictMeasure(t, s); got != "variance" {
		t.Fatalf("before reload: %q, want variance", got)
	}
	if st := s.Status(); st.Generation != 1 {
		t.Fatalf("initial generation = %d, want 1", st.Generation)
	}

	rec := post(t, s.Handler(), "/v1/admin/reload", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("reload: %d %s", rec.Code, rec.Body)
	}
	var st ModelStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Generation != 2 || st.LoadedAt.IsZero() {
		t.Fatalf("reload status = %+v, want generation 2 with load time", st)
	}
	if got := predictMeasure(t, s); got != "schutz" {
		t.Fatalf("after reload: %q, want schutz", got)
	}

	// /v1/model reports the new generation.
	req := httptest.NewRequest(http.MethodGet, "/v1/model", nil)
	mrec := httptest.NewRecorder()
	s.Handler().ServeHTTP(mrec, req)
	var got ModelStatus
	if err := json.Unmarshal(mrec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Generation != 2 {
		t.Fatalf("/v1/model generation = %d, want 2", got.Generation)
	}
}

func TestReloadFailureKeepsServing(t *testing.T) {
	boom := errors.New("snapshot unreadable")
	s := tinyServer(t, Options{
		Reloader: func() (*knn.Classifier, ModelInfo, error) { return nil, ModelInfo{}, boom },
	})
	if _, err := s.Reload(); !errors.Is(err, boom) {
		t.Fatalf("Reload error = %v, want wrapped %v", err, boom)
	}
	if st := s.Status(); st.Generation != 1 {
		t.Fatalf("generation after failed reload = %d, want 1", st.Generation)
	}
	if got := predictMeasure(t, s); got != "variance" {
		t.Fatalf("after failed reload: %q, want the old model's variance", got)
	}
	rec := post(t, s.Handler(), "/v1/admin/reload", "")
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("failed reload over HTTP: %d, want 500", rec.Code)
	}
}

func TestReloadPanicIsolated(t *testing.T) {
	s := tinyServer(t, Options{
		Reloader: func() (*knn.Classifier, ModelInfo, error) { panic("corrupt state") },
	})
	if _, err := s.Reload(); err == nil || !strings.Contains(err.Error(), "corrupt state") {
		t.Fatalf("Reload error = %v, want recovered panic", err)
	}
	if got := predictMeasure(t, s); got != "variance" {
		t.Fatalf("after panicking reload: %q, want variance", got)
	}
}

func TestReloadSelfTestRejectsHollowModel(t *testing.T) {
	for name, r := range map[string]Reloader{
		"nil classifier": func() (*knn.Classifier, ModelInfo, error) { return nil, ModelInfo{}, nil },
		"no samples": func() (*knn.Classifier, ModelInfo, error) {
			return knn.New(nil, distance.NewMemoizedTreeEdit(nil), knn.Config{K: 1}), ModelInfo{}, nil
		},
	} {
		s := tinyServer(t, Options{Reloader: r})
		if _, err := s.Reload(); err == nil || !strings.Contains(err.Error(), "self-test") {
			t.Fatalf("%s: Reload error = %v, want self-test rejection", name, err)
		}
		if got := predictMeasure(t, s); got != "variance" {
			t.Fatalf("%s: after rejected reload: %q, want variance", name, got)
		}
	}
}

func TestReloadWithoutReloader(t *testing.T) {
	s := tinyServer(t, Options{})
	if _, err := s.Reload(); !errors.Is(err, ErrNoReloader) {
		t.Fatalf("Reload error = %v, want ErrNoReloader", err)
	}
	rec := post(t, s.Handler(), "/v1/admin/reload", "")
	if rec.Code != http.StatusNotImplemented {
		t.Fatalf("reload without reloader over HTTP: %d, want 501", rec.Code)
	}
}

func TestReloadRejectedWhileDraining(t *testing.T) {
	s := tinyServer(t, Options{
		Reloader: func() (*knn.Classifier, ModelInfo, error) {
			return labeledClassifier("schutz"), ModelInfo{}, nil
		},
	})
	s.SetReady(false)
	if _, err := s.Reload(); !errors.Is(err, ErrDraining) {
		t.Fatalf("Reload while draining = %v, want ErrDraining", err)
	}
	rec := post(t, s.Handler(), "/v1/admin/reload", "")
	if rec.Code != http.StatusConflict {
		t.Fatalf("draining reload over HTTP: %d, want 409", rec.Code)
	}
}

func TestReloadMethodNotAllowed(t *testing.T) {
	s := tinyServer(t, Options{})
	req := httptest.NewRequest(http.MethodGet, "/v1/admin/reload", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET reload: %d, want 405", rec.Code)
	}
}

// TestRetryAfterScalesWithOccupancy pins the formula: proportional to
// in-flight occupancy while serving, the full shutdown grace while
// draining, never below one second.
func TestRetryAfterScalesWithOccupancy(t *testing.T) {
	s := tinyServer(t, Options{MaxInFlight: 4, RetryAfter: 8 * time.Second, ShutdownGrace: 7 * time.Second})
	fill := func(n int) {
		for occ, _ := s.lim.occupancy(); occ > 0; occ, _ = s.lim.occupancy() {
			s.lim.release(0)
		}
		for i := 0; i < n; i++ {
			s.lim.tryAcquire()
		}
	}
	for _, tc := range []struct {
		occ, want int
	}{
		{0, 1}, // empty: minimum hint
		{1, 2}, // 8s * 1/4
		{2, 4}, // 8s * 2/4
		{4, 8}, // fully saturated: the whole interval
	} {
		fill(tc.occ)
		if got := s.retryAfterSeconds(); got != tc.want {
			t.Fatalf("occupancy %d/4: Retry-After = %d, want %d", tc.occ, got, tc.want)
		}
	}
	fill(0)
	s.SetReady(false)
	if got := s.retryAfterSeconds(); got != 7 {
		t.Fatalf("draining Retry-After = %d, want ShutdownGrace's 7", got)
	}
}

// TestSaturationRetryAfterHeader drives the formula end to end: a fully
// saturated server advertises its configured interval on the shed 503.
func TestSaturationRetryAfterHeader(t *testing.T) {
	s := tinyServer(t, Options{MaxInFlight: 1, RetryAfter: 8 * time.Second})
	s.lim.tryAcquire()
	defer s.lim.release(0)
	rec := post(t, s.Handler(), "/v1/predict", wireBody(t, false, trainCtx("q", 1)))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated predict: %d, want 503", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "8" {
		t.Fatalf("Retry-After = %q, want %q", ra, "8")
	}
}

// gatedMetric blocks every distance computation until the gate opens —
// the handle the drain test uses to hold requests in flight.
type gatedMetric struct {
	gate  chan struct{}
	inner distance.Metric
}

func (g *gatedMetric) Distance(a, b *session.Context) float64 {
	<-g.gate
	return g.inner.Distance(a, b)
}

func (g *gatedMetric) Name() string { return "gated" }

// TestDrainCompletesInFlight is the drain-under-load contract: requests
// already executing when Run's context is canceled complete with 200
// inside ShutdownGrace, readiness flips immediately, a reload attempted
// mid-drain is rejected, and Run returns nil.
func TestDrainCompletesInFlight(t *testing.T) {
	gate := make(chan struct{})
	metric := &gatedMetric{gate: gate, inner: distance.NewMemoizedTreeEdit(nil)}
	sample := &offline.Sample{Context: trainCtx("train", 1), Labels: []string{"variance"}}
	clf := knn.New([]*offline.Sample{sample}, metric, knn.Config{K: 1, ThetaDelta: 0.25, Workers: 1})
	s := New(clf, ModelInfo{Method: "normalized", TrainingSize: 1}, Options{
		MaxInFlight:   4,
		ShutdownGrace: 5 * time.Second,
		Reloader: func() (*knn.Classifier, ModelInfo, error) {
			return labeledClassifier("schutz"), ModelInfo{}, nil
		},
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- s.RunListener(ctx, ln) }()

	base := fmt.Sprintf("http://%s", ln.Addr())
	const inFlight = 3
	codes := make(chan int, inFlight)
	for i := 0; i < inFlight; i++ {
		body := wireBody(t, false, trainCtx(fmt.Sprintf("q%d", i), 1))
		go func() {
			resp, err := http.Post(base+"/v1/predict", "application/json", strings.NewReader(body))
			if err != nil {
				codes <- -1
				return
			}
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}

	// Wait until all three requests hold in-flight slots (blocked on the
	// gate inside the classifier).
	deadline := time.Now().Add(2 * time.Second)
	for {
		occ, _ := s.lim.occupancy()
		if occ >= inFlight {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests in flight", occ, inFlight)
		}
		time.Sleep(time.Millisecond)
	}

	cancel() // begin the drain with requests still executing

	// Readiness flips before the drain completes.
	readyDeadline := time.Now().Add(2 * time.Second)
	for s.isReady() {
		if time.Now().After(readyDeadline) {
			t.Fatal("readiness never flipped during drain")
		}
		time.Sleep(time.Millisecond)
	}

	// A reload racing the drain is rejected, not half-applied.
	if _, err := s.Reload(); !errors.Is(err, ErrDraining) {
		t.Fatalf("mid-drain Reload = %v, want ErrDraining", err)
	}

	close(gate) // release the in-flight predictions
	for i := 0; i < inFlight; i++ {
		select {
		case code := <-codes:
			if code != http.StatusOK {
				t.Fatalf("in-flight request finished with %d, want 200", code)
			}
		case <-time.After(4 * time.Second):
			t.Fatal("in-flight request did not complete during the drain")
		}
	}
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("drain returned %v, want nil", err)
		}
	case <-time.After(4 * time.Second):
		t.Fatal("RunListener did not return after the drain")
	}
}
