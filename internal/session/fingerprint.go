package session

import (
	"hash/fnv"
	"io"

	"repro/internal/dataset"
)

// Fingerprint returns a stable 64-bit identity of the repository's
// content: every registered dataset (canonical CSV encoding, in sorted
// name order) and every recorded session (the JSON log encoding, in
// insertion order). Two repositories holding identical data fingerprint
// identically regardless of how they were loaded; any change to a cell,
// a schema, or a recorded action changes it. The checkpoint layer
// (internal/checkpoint) keys resume eligibility on this hash so a
// checkpoint taken against one dataset/log pair is never replayed
// against another.
func (r *Repository) Fingerprint() uint64 {
	h := fnv.New64a()
	io.WriteString(h, "idarepro-repo-v1\n")
	for _, name := range r.DatasetNames() {
		io.WriteString(h, "dataset\x00"+name+"\x00")
		if root := r.roots[name]; root != nil && root.Table != nil {
			// Hash writers never fail, so the canonical CSV encoding
			// lands in the hash in full.
			_ = dataset.WriteCSV(h, root.Table)
		}
		io.WriteString(h, "\x00")
	}
	io.WriteString(h, "sessions\x00")
	_ = WriteLog(h, r.sessions)
	return h.Sum64()
}
