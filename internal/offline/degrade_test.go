package offline

import (
	"math"
	"testing"
	"time"

	"repro/internal/stats"
)

// checkFiniteNorm asserts a fitted normalization has finite moments and
// produces a finite relative score for a finite input.
func checkFiniteNorm(t *testing.T, shape string, mn MeasureNorm) {
	t.Helper()
	if math.IsNaN(mn.Mean) || math.IsInf(mn.Mean, 0) {
		t.Errorf("%s: mean = %v, want finite", shape, mn.Mean)
	}
	if math.IsNaN(mn.Std) || math.IsInf(mn.Std, 0) || mn.Std < 0 {
		t.Errorf("%s: std = %v, want finite >= 0", shape, mn.Std)
	}
	if rel := mn.Relative(1.5); math.IsNaN(rel) || math.IsInf(rel, 0) {
		t.Errorf("%s: Relative(1.5) = %v, want finite", shape, rel)
	}
}

// TestFitOneDegenerateShapes is the per-shape regression suite for the
// Box-Cox → z-score-only degradation rung: every degenerate distribution
// must fit without error and yield finite, usable parameters.
func TestFitOneDegenerateShapes(t *testing.T) {
	shapes := map[string][]float64{
		"empty":        {},
		"single":       {2.5},
		"constant":     {3, 3, 3, 3, 3},
		"with-nan":     {1, 2, math.NaN(), 4, 5},
		"with+inf":     {1, 2, math.Inf(1), 4, 5},
		"with-inf":     {1, 2, math.Inf(-1), 4, 5},
		"all-nan":      {math.NaN(), math.NaN(), math.NaN()},
		"all-inf":      {math.Inf(1), math.Inf(-1), math.Inf(1)},
		"nan-and-inf":  {math.NaN(), math.Inf(1), 1, 2, 3},
		"tiny-variant": {1, 1 + 1e-16, 1},
	}
	for shape, series := range shapes {
		mn, err := fitOne(series)
		if err != nil {
			t.Errorf("%s: fitOne error %v, want z-score-only fallback", shape, err)
			continue
		}
		checkFiniteNorm(t, shape, mn)
	}
}

// TestFitOneConstantKeepsHistoricalMoments pins the bit-identical
// contract: an all-finite constant series takes the λ=1 MLE shortcut
// (not the degradation rung), so its moments stay those of the λ=1
// Box-Cox transform (x-1), exactly as before this PR.
func TestFitOneConstantKeepsHistoricalMoments(t *testing.T) {
	mn, err := fitOne([]float64{7, 7, 7, 7})
	if err != nil {
		t.Fatal(err)
	}
	if mn.BoxCox.Lambda != 1 || mn.Mean != 6 || mn.Std != 0 {
		t.Errorf("constant fit = %+v, want λ=1, mean 6 (= 7-1), std 0", mn)
	}
	if z := mn.Relative(7); z != 0 {
		t.Errorf("Relative(7) = %v, want the no-signal 0", z)
	}
}

// TestFitOneNonFiniteUsesFiniteMoments checks the moments come from the
// finite observations only, not poisoned by the NaN/Inf entries.
func TestFitOneNonFiniteUsesFiniteMoments(t *testing.T) {
	mn, err := fitOne([]float64{math.NaN(), 2, 4, math.Inf(1), 6})
	if err != nil {
		t.Fatal(err)
	}
	if mn.Mean != 4 {
		t.Errorf("mean over finite {2,4,6} = %v, want 4", mn.Mean)
	}
	if mn.Std == 0 || math.IsNaN(mn.Std) {
		t.Errorf("std = %v, want finite > 0", mn.Std)
	}
}

// TestNormalizerSurvivesDegenerateMeasure runs the full fit over nodes
// carrying a NaN-scoring measure next to a healthy one: the healthy
// measure keeps a real Box-Cox fit, the poisoned one degrades, and Apply
// emits no NaN for finite raw inputs.
func TestNormalizerSurvivesDegenerateMeasure(t *testing.T) {
	repo := testRepo(t)
	a, err := Analyze(repo, Options{MinRefs: 1, SkipReference: true})
	if err != nil {
		t.Fatal(err)
	}
	// Poison one synthetic measure with NaN scores on every node.
	for i, ns := range a.Nodes {
		ns.Raw["poisoned"] = math.NaN()
		if i%2 == 0 {
			ns.Raw["poisoned"] = math.Inf(1)
		}
	}
	msrs := a.Measures
	norm, err := FitNormalizerWorkers(msrs, a.Nodes, 1)
	if err != nil {
		t.Fatal(err)
	}
	for name, mn := range norm.Params {
		checkFiniteNorm(t, name, mn)
	}
}

// TestRefBudgetTriggersNormalizedFallback forces every reference
// execution over a 1ns budget: all executions become abnormal, so every
// node that would otherwise rank against references must land on the
// normalized-fallback rung — RefRelative = Φ(z) of its NormRelative.
func TestRefBudgetTriggersNormalizedFallback(t *testing.T) {
	repo := testRepo(t)
	a, err := Analyze(repo, Options{MinRefs: 1, RefBudget: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	fallbacks := 0
	for _, ns := range a.Nodes {
		if len(ns.RefRelative) == 0 {
			continue
		}
		fallbacks++
		for name, z := range ns.NormRelative {
			want := stats.NormalCDF(z)
			if got := ns.RefRelative[name]; got != want {
				t.Fatalf("node %s/%s: RefRelative = %v, want Φ(%v) = %v",
					ns.Session.ID, name, got, z, want)
			}
		}
	}
	if fallbacks == 0 {
		t.Fatal("no node took the normalized fallback rung")
	}
}

// TestRefBudgetUnsetKeepsReferenceScores pins that without a budget the
// reference pass still produces genuine percentile ranks (not Φ(z)).
func TestRefBudgetUnsetKeepsReferenceScores(t *testing.T) {
	repo := testRepo(t)
	a, err := Analyze(repo, Options{MinRefs: 1})
	if err != nil {
		t.Fatal(err)
	}
	ranked := 0
	for _, ns := range a.Nodes {
		ranked += len(ns.RefRelative)
	}
	if ranked == 0 {
		t.Fatal("reference pass produced no scores")
	}
}
