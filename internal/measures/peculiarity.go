package measures

import (
	"math"

	"repro/internal/engine"
	"repro/internal/stats"
)

// OSFMeasure is the Peculiarity measure "Outlier Score Function" of Table 1
// (Lin & Brown 2006). The original OSF scores the peculiarity of a single
// element within the examined display and the final display score is the
// maximum of the elements' individual scores.
//
// Substitution note (documented in DESIGN.md): Lin & Brown's incident-
// linking OSF is defined over clustered categorical incident data; this
// reproduction uses the standard robust-statistics formulation of an
// element outlier score — the MAD-standardized distance of each element's
// magnitude from the display's median,
//
//	z_j = |x_j - median(x)| / (1.4826·MAD(x) + ε)
//
// squashed to (0,1) via z/(1+z) — which preserves OSF's two defining
// properties: per-element scoring and max-aggregation.
type OSFMeasure struct{}

// Name implements Measure.
func (OSFMeasure) Name() string { return "osf" }

// Class implements Measure.
func (OSFMeasure) Class() Class { return Peculiarity }

// Score implements Measure.
func (OSFMeasure) Score(ctx *Context) float64 {
	if ctx.Display != nil && ctx.Display.Aggregated {
		return osfOf(ctx.Display.AggValues())
	}
	// Raw display: the most peculiar element across numeric columns.
	best := 0.0
	if ctx.Display == nil {
		return 0
	}
	t := ctx.Display.Table
	prof := ctx.Display.GetProfile()
	for _, cp := range prof.Columns {
		if !cp.IsNumeric {
			continue
		}
		col := t.ColumnByName(cp.Name)
		vals := make([]float64, col.Len())
		for i := range vals {
			vals[i] = col.Value(i).Float()
		}
		if s := osfOf(vals); s > best {
			best = s
		}
	}
	return best
}

func osfOf(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	med := stats.Median(xs)
	mad := stats.MAD(xs)
	scale := 1.4826*mad + 1e-9
	if mad == 0 {
		// Half the display identical: fall back to standard deviation so
		// a lone extreme value still registers.
		scale = stats.StdDev(xs) + 1e-9
	}
	maxZ := 0.0
	for _, x := range xs {
		z := math.Abs(x-med) / scale
		if z > maxZ {
			maxZ = z
		}
	}
	return maxZ / (1 + maxZ)
}

// DeviationMeasure is the Peculiarity measure "Deviation" of Table 1
// (following SeeDB): the Kullback-Leibler divergence between the display's
// distribution {p_j} and the distribution {p'_j} of the same quantity in a
// reference display — the session's root display d0.
//
// For an aggregated display, the reference distribution is obtained by
// re-grouping the root dataset by the display's group column (with the same
// aggregate); for a raw display the score is the maximum divergence across
// columns shared with the root.
type DeviationMeasure struct{}

// Name implements Measure.
func (DeviationMeasure) Name() string { return "deviation" }

// Class implements Measure.
func (DeviationMeasure) Class() Class { return Peculiarity }

// Score implements Measure.
func (DeviationMeasure) Score(ctx *Context) float64 {
	d := ctx.Display
	root := ctx.Root
	if d == nil || root == nil || d == root {
		return 0
	}
	if d.Aggregated {
		// Reference: the same grouping applied to the root dataset.
		refAction := &engine.Action{
			Type:      engine.ActionGroup,
			GroupBy:   d.GroupColumn,
			Agg:       aggOf(d),
			AggColumn: aggColumnOf(d),
		}
		ref, err := engine.Execute(root, refAction)
		if err != nil {
			return 0
		}
		p := groupedMap(d)
		q := groupedMap(ref)
		pa, pb := stats.AlignedDistributions(p, q)
		return stats.KLDivergence(pa, pb, 1e-6)
	}
	// Raw display: maximum column-histogram divergence vs the root.
	rootProf := root.GetProfile()
	prof := d.GetProfile()
	best := 0.0
	for _, cp := range prof.Columns {
		rp := rootProf.Column(cp.Name)
		if rp == nil {
			continue
		}
		pa, pb := stats.AlignedDistributions(cp.Freq, rp.Freq)
		if kl := stats.KLDivergence(pa, pb, 1e-6); kl > best {
			best = kl
		}
	}
	return best
}

func aggOf(d *engine.Display) engine.AggFunc {
	if d.FromAction != nil && d.FromAction.Type == engine.ActionGroup {
		return d.FromAction.Agg
	}
	return engine.AggCount
}

func aggColumnOf(d *engine.Display) string {
	if d.FromAction != nil && d.FromAction.Type == engine.ActionGroup {
		return d.FromAction.AggColumn
	}
	return ""
}

// groupedMap returns group-key -> aggregate-value for an aggregated display.
func groupedMap(d *engine.Display) map[string]float64 {
	out := make(map[string]float64, d.Table.NumRows())
	gc := d.Table.ColumnByName(d.GroupColumn)
	vc := d.Table.ColumnByName(d.ValueColumn)
	if gc == nil || vc == nil {
		return out
	}
	for i := 0; i < d.Table.NumRows(); i++ {
		out[gc.Value(i).String()] = vc.Value(i).Float()
	}
	return out
}
