package querylog

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/session"
)

func packetsTable(t *testing.T) *dataset.Table {
	t.Helper()
	b := dataset.NewBuilder("packets", dataset.Schema{
		{Name: "protocol", Kind: dataset.KindString},
		{Name: "dst_ip", Kind: dataset.KindString},
		{Name: "hour", Kind: dataset.KindInt},
		{Name: "length", Kind: dataset.KindInt},
	})
	for i := 0; i < 60; i++ {
		proto := []string{"HTTP", "HTTP", "HTTP", "HTTPS", "DNS", "SSH"}[i%6]
		b.Append(
			dataset.S(proto),
			dataset.S(string(rune('a'+i%4))),
			dataset.I(int64(6+i%18)),
			dataset.I(int64(60+10*i)),
		)
	}
	return b.MustBuild()
}

func t0() time.Time { return time.Date(2018, 3, 1, 9, 0, 0, 0, time.UTC) }

func TestParseAndWriteLogRoundTrip(t *testing.T) {
	in := strings.Join([]string{
		"# a comment",
		"2018-03-01T09:00:00Z\tclarice\tSELECT protocol, COUNT(*) FROM packets GROUP BY protocol",
		"",
		"2018-03-01T09:01:00Z\tclarice\tSELECT * FROM packets WHERE hour > 19",
	}, "\n")
	entries, err := ParseLog(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %d", len(entries))
	}
	if entries[0].User != "clarice" || !strings.Contains(entries[0].SQL, "GROUP BY") {
		t.Errorf("entry 0 = %+v", entries[0])
	}
	var buf bytes.Buffer
	if err := WriteLog(&buf, entries); err != nil {
		t.Fatal(err)
	}
	back, err := ParseLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[1].SQL != entries[1].SQL {
		t.Error("write/parse round trip failed")
	}
}

func TestParseLogErrors(t *testing.T) {
	if _, err := ParseLog(strings.NewReader("not a log line")); err == nil {
		t.Error("malformed line must fail")
	}
	if _, err := ParseLog(strings.NewReader("yesterday\tu\tSELECT 1")); err == nil {
		t.Error("bad timestamp must fail")
	}
}

func TestReconstructBuildsRefinementTree(t *testing.T) {
	repo := session.NewRepository()
	repo.AddDataset(packetsTable(t))
	entries := []Entry{
		{Time: t0(), User: "clarice", SQL: "SELECT protocol, COUNT(*) FROM packets GROUP BY protocol"},
		{Time: t0().Add(1 * time.Minute), User: "clarice", SQL: "SELECT * FROM packets WHERE protocol = 'HTTP'"},
		{Time: t0().Add(2 * time.Minute), User: "clarice", SQL: "SELECT * FROM packets WHERE protocol = 'HTTP' AND hour > 12"},
		{Time: t0().Add(3 * time.Minute), User: "clarice", SQL: "SELECT dst_ip, COUNT(*) FROM packets WHERE protocol = 'HTTP' AND hour > 12 GROUP BY dst_ip"},
	}
	rep, err := Reconstruct(repo, entries, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 1 {
		t.Fatalf("sessions = %d", rep.Sessions)
	}
	s := repo.Sessions()[0]
	if s.Analyst != "clarice" {
		t.Errorf("analyst = %q", s.Analyst)
	}
	// Expected tree: root -> group(protocol); root -> filter(HTTP) ->
	// filter(hour>12) -> group(dst_ip). 4 actions.
	if s.Steps() != 4 {
		t.Fatalf("steps = %d, want 4", s.Steps())
	}
	n2 := s.NodeAt(2) // filter HTTP
	if n2.Parent != s.Root() || n2.Action.Type != engine.ActionFilter {
		t.Error("filter(HTTP) should hang off the root")
	}
	n3 := s.NodeAt(3) // incremental hour filter
	if n3.Parent != n2 {
		t.Error("refining filter should hang off the HTTP slice")
	}
	if len(n3.Action.Predicates) != 1 || n3.Action.Predicates[0].Column != "hour" {
		t.Errorf("incremental predicate = %v", n3.Action.Predicates)
	}
	n4 := s.NodeAt(4) // group on the refined slice
	if n4.Parent != n3 || n4.Action.Type != engine.ActionGroup {
		t.Error("group should hang off the refined slice")
	}
	// Display content must equal direct execution of the cumulative query.
	if n3.Display.NumRows() >= n2.Display.NumRows() {
		t.Error("refinement must shrink the display")
	}
}

func TestReconstructSessionizesByGapAndUser(t *testing.T) {
	repo := session.NewRepository()
	repo.AddDataset(packetsTable(t))
	entries := []Entry{
		{Time: t0(), User: "a", SQL: "SELECT * FROM packets WHERE hour > 10"},
		{Time: t0().Add(2 * time.Minute), User: "a", SQL: "SELECT * FROM packets WHERE hour > 12"},
		// > 30 min gap: a's second session.
		{Time: t0().Add(2 * time.Hour), User: "a", SQL: "SELECT * FROM packets WHERE protocol = 'SSH'"},
		// Different user, interleaved in time: their own session.
		{Time: t0().Add(1 * time.Minute), User: "b", SQL: "SELECT protocol, COUNT(*) FROM packets GROUP BY protocol"},
	}
	rep, err := Reconstruct(repo, entries, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 3 {
		t.Fatalf("sessions = %d, want 3", rep.Sessions)
	}
}

func TestReconstructSkipErrors(t *testing.T) {
	repo := session.NewRepository()
	repo.AddDataset(packetsTable(t))
	entries := []Entry{
		{Time: t0(), User: "x", SQL: "SELECT * FROM packets WHERE hour > 10"},
		{Time: t0().Add(time.Minute), User: "x", SQL: "DROP TABLE packets"},
		{Time: t0().Add(2 * time.Minute), User: "x", SQL: "SELECT * FROM packets WHERE hour > 23"}, // empty result
	}
	rep, err := Reconstruct(repo, entries, Options{SkipErrors: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 1 {
		t.Fatalf("sessions = %d", rep.Sessions)
	}
	if len(rep.Skipped) != 2 {
		t.Errorf("skipped = %v", rep.Skipped)
	}
	// Without SkipErrors the bad query is fatal.
	repo2 := session.NewRepository()
	repo2.AddDataset(packetsTable(t))
	if _, err := Reconstruct(repo2, entries, Options{}); err == nil {
		t.Error("bad query must fail without SkipErrors")
	}
}

func TestReconstructRepeatedQueryIsNavigation(t *testing.T) {
	repo := session.NewRepository()
	repo.AddDataset(packetsTable(t))
	q := "SELECT * FROM packets WHERE protocol = 'HTTP'"
	entries := []Entry{
		{Time: t0(), User: "x", SQL: q},
		{Time: t0().Add(time.Minute), User: "x", SQL: q}, // re-issued
		{Time: t0().Add(2 * time.Minute), User: "x", SQL: "SELECT * FROM packets WHERE protocol = 'HTTP' AND hour > 12"},
	}
	rep, err := Reconstruct(repo, entries, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Actions != 2 {
		t.Errorf("actions = %d, want 2 (repeat is navigation)", rep.Actions)
	}
}

func TestExportReconstructRoundTrip(t *testing.T) {
	// Build sessions, export to a flat log, reconstruct, compare shapes.
	repo := session.NewRepository()
	tbl := packetsTable(t)
	root := repo.AddDataset(tbl)

	s := session.New("orig", "packets", root)
	s.Analyst = "clarice"
	if _, err := s.Apply(engine.NewGroupCount("protocol")); err != nil {
		t.Fatal(err)
	}
	if err := s.BackTo(s.Root()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(engine.NewFilter(
		engine.Predicate{Column: "protocol", Op: engine.OpEq, Operand: dataset.S("HTTP")},
	)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(engine.NewGroupCount("dst_ip")); err != nil {
		t.Fatal(err)
	}
	repo.Add(s)

	entries, skipped, err := Export(repo, ExportOptions{Start: t0(), ThinkTime: 30 * time.Second, SessionGap: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("skipped = %d", skipped)
	}
	if len(entries) != 3 {
		t.Fatalf("exported entries = %d", len(entries))
	}

	repo2 := session.NewRepository()
	repo2.AddDataset(tbl)
	rep, err := Reconstruct(repo2, entries, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 1 || rep.Actions != 3 {
		t.Fatalf("report = %+v", rep)
	}
	back := repo2.Sessions()[0]
	if back.Steps() != s.Steps() {
		t.Fatalf("steps = %d, want %d", back.Steps(), s.Steps())
	}
	for i := 1; i <= s.Steps(); i++ {
		a, b := s.NodeAt(i), back.NodeAt(i)
		if a.Display.NumRows() != b.Display.NumRows() {
			t.Errorf("step %d rows: %d vs %d", i, a.Display.NumRows(), b.Display.NumRows())
		}
		if a.Parent.Step != b.Parent.Step {
			t.Errorf("step %d parent: %d vs %d", i, a.Parent.Step, b.Parent.Step)
		}
	}
}

func TestReconstructTopKPipeline(t *testing.T) {
	repo := session.NewRepository()
	repo.AddDataset(packetsTable(t))
	entries := []Entry{
		{Time: t0(), User: "x", SQL: "SELECT dst_ip, COUNT(*) FROM packets WHERE protocol = 'HTTP' GROUP BY dst_ip ORDER BY count DESC LIMIT 2"},
	}
	rep, err := Reconstruct(repo, entries, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 1 || rep.Actions != 3 {
		t.Fatalf("report = %+v", rep)
	}
	s := repo.Sessions()[0]
	last := s.NodeAt(3)
	if last.Action.Type != engine.ActionTopK || last.Display.NumRows() != 2 {
		t.Errorf("final node = %s with %d rows", last.Action, last.Display.NumRows())
	}
	if !last.Display.Aggregated {
		t.Error("top-k over an aggregation keeps the aggregation shape")
	}
	// And the whole thing round-trips back out.
	entries2, skipped, err := Export(repo, ExportOptions{Start: t0()})
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(entries2) != 3 {
		t.Fatalf("export: %d entries, %d skipped", len(entries2), skipped)
	}
}

func TestExportRejectsInexpressibleSessions(t *testing.T) {
	repo := session.NewRepository()
	root := repo.AddDataset(packetsTable(t))
	s := session.New("x", "packets", root)
	if _, err := s.Apply(engine.NewGroupCount("protocol")); err != nil {
		t.Fatal(err)
	}
	// Filter on the aggregated display (HAVING-style): not expressible.
	if _, err := s.Apply(engine.NewFilter(
		engine.Predicate{Column: "count", Op: engine.OpGt, Operand: dataset.F(5)},
	)); err != nil {
		t.Fatal(err)
	}
	repo.Add(s)
	if _, _, err := Export(repo, ExportOptions{Start: t0()}); err == nil {
		t.Error("HAVING-style session must not export")
	}
	// Best-effort mode skips the offending step but keeps the rest.
	entries, skipped, err := Export(repo, ExportOptions{Start: t0(), SkipInexpressible: true})
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 || len(entries) != 1 {
		t.Errorf("best-effort export: entries=%d skipped=%d", len(entries), skipped)
	}
}
