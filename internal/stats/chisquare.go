package stats

import (
	"fmt"
	"math"
)

// ChiSquareResult reports a chi-square test of independence.
type ChiSquareResult struct {
	// Statistic is the chi-square test statistic.
	Statistic float64
	// DF is the degrees of freedom, (rows-1)*(cols-1).
	DF int
	// PValue is the upper-tail probability P(X² >= Statistic).
	PValue float64
	// LogPValue is the natural log of PValue, usable when PValue
	// underflows to 0 (the paper reports p < 1e-67).
	LogPValue float64
}

// ChiSquareIndependence runs Pearson's chi-square test of independence on a
// contingency table (rows = categories of variable A, cols = of variable B).
// Rows or columns whose marginal total is zero are ignored for the degrees
// of freedom. An error is returned if the table is degenerate (fewer than
// two non-empty rows or columns).
func ChiSquareIndependence(table [][]float64) (ChiSquareResult, error) {
	r := len(table)
	if r == 0 {
		return ChiSquareResult{}, fmt.Errorf("stats: chi-square: empty table")
	}
	c := len(table[0])
	for i, row := range table {
		if len(row) != c {
			return ChiSquareResult{}, fmt.Errorf("stats: chi-square: ragged table at row %d", i)
		}
	}
	rowSum := make([]float64, r)
	colSum := make([]float64, c)
	total := 0.0
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			v := table[i][j]
			if v < 0 {
				return ChiSquareResult{}, fmt.Errorf("stats: chi-square: negative count at (%d,%d)", i, j)
			}
			rowSum[i] += v
			colSum[j] += v
			total += v
		}
	}
	if total == 0 {
		return ChiSquareResult{}, fmt.Errorf("stats: chi-square: all-zero table")
	}
	liveR, liveC := 0, 0
	for _, s := range rowSum {
		if s > 0 {
			liveR++
		}
	}
	for _, s := range colSum {
		if s > 0 {
			liveC++
		}
	}
	if liveR < 2 || liveC < 2 {
		return ChiSquareResult{}, fmt.Errorf("stats: chi-square: need >=2 non-empty rows and columns (have %d x %d)", liveR, liveC)
	}
	stat := 0.0
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			exp := rowSum[i] * colSum[j] / total
			if exp == 0 {
				continue
			}
			d := table[i][j] - exp
			stat += d * d / exp
		}
	}
	df := (liveR - 1) * (liveC - 1)
	p, logP := ChiSquareSurvival(stat, df)
	return ChiSquareResult{Statistic: stat, DF: df, PValue: p, LogPValue: logP}, nil
}

// ChiSquareSurvival returns P(X² >= x) for a chi-square distribution with
// df degrees of freedom, along with its natural logarithm (accurate even
// when the probability underflows float64).
func ChiSquareSurvival(x float64, df int) (p, logP float64) {
	if x <= 0 {
		return 1, 0
	}
	a := float64(df) / 2
	return upperIncompleteGammaRegularized(a, x/2)
}

// upperIncompleteGammaRegularized computes Q(a, x) = Γ(a,x)/Γ(a) and
// ln Q(a, x) using the standard series/continued-fraction split
// (Numerical Recipes §6.2).
func upperIncompleteGammaRegularized(a, x float64) (q, logQ float64) {
	if x < 0 || a <= 0 {
		return math.NaN(), math.NaN()
	}
	if x == 0 {
		return 1, 0
	}
	if x < a+1 {
		// Use the series for P(a,x) and return 1-P.
		p, _ := lowerGammaSeries(a, x)
		q = 1 - p
		if q <= 0 {
			q = 0
			logQ = math.Inf(-1)
		} else {
			logQ = math.Log(q)
		}
		return q, logQ
	}
	return upperGammaContinuedFraction(a, x)
}

// lowerGammaSeries evaluates the regularized lower incomplete gamma P(a,x)
// by its power series; valid for x < a+1.
func lowerGammaSeries(a, x float64) (p, logP float64) {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for n := 0; n < 500; n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	logP = -x + a*math.Log(x) - lg + math.Log(sum)
	return math.Exp(logP), logP
}

// upperGammaContinuedFraction evaluates the regularized upper incomplete
// gamma Q(a,x) by Lentz's continued fraction; valid for x >= a+1.
func upperGammaContinuedFraction(a, x float64) (q, logQ float64) {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	logQ = -x + a*math.Log(x) - lg + math.Log(h)
	return math.Exp(logQ), logQ
}
