package engine

import (
	"testing"

	"repro/internal/dataset"
)

func TestEnumerateActionsCoversTypes(t *testing.T) {
	root := trafficDisplay(t)
	cands := EnumerateActions(root, EnumerateOptions{})
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	var groups, filters int
	for _, a := range cands {
		switch a.Type {
		case ActionGroup:
			groups++
		case ActionFilter:
			filters++
		}
	}
	if groups == 0 || filters == 0 {
		t.Errorf("candidates unbalanced: %d groups, %d filters", groups, filters)
	}
}

func TestEnumerateActionsAllExecutableOrDegenerate(t *testing.T) {
	root := trafficDisplay(t)
	cands := EnumerateActions(root, EnumerateOptions{IncludeAggregates: true})
	for _, a := range cands {
		_, err := Execute(root, a)
		// ErrEmptyResult is acceptable (quantile edges); anything else is
		// an enumeration bug.
		if err != nil && err != ErrEmptyResult {
			t.Errorf("candidate %s failed: %v", a, err)
		}
	}
}

func TestEnumerateActionsAggregateOption(t *testing.T) {
	root := trafficDisplay(t)
	without := EnumerateActions(root, EnumerateOptions{})
	with := EnumerateActions(root, EnumerateOptions{IncludeAggregates: true})
	if len(with) <= len(without) {
		t.Errorf("IncludeAggregates should add candidates: %d vs %d", len(with), len(without))
	}
	foundSum := false
	for _, a := range with {
		if a.Type == ActionGroup && a.Agg == AggSum {
			foundSum = true
		}
	}
	if !foundSum {
		t.Error("no sum aggregate candidate")
	}
}

func TestEnumerateActionsSkipsHighCardinalityGroups(t *testing.T) {
	b := dataset.NewBuilder("wide", dataset.Schema{
		{Name: "id", Kind: dataset.KindString},
		{Name: "class", Kind: dataset.KindString},
	})
	for i := 0; i < 300; i++ {
		b.Append(dataset.S(string(rune('a'+i%26))+string(rune('a'+(i/26)%26))+string(rune('0'+i%10))), dataset.S("c"))
	}
	d := NewRootDisplay(b.MustBuild())
	cands := EnumerateActions(d, EnumerateOptions{MaxCategoricalCardinality: 30})
	for _, a := range cands {
		if a.Type == ActionGroup && a.GroupBy == "id" {
			t.Fatalf("high-cardinality column enumerated as group target: %s", a)
		}
	}
}

func TestEnumerateActionsOnAggregatedDisplay(t *testing.T) {
	root := trafficDisplay(t)
	agg, err := Execute(root, NewGroupCount("protocol"))
	if err != nil {
		t.Fatal(err)
	}
	cands := EnumerateActions(agg, EnumerateOptions{})
	if len(cands) == 0 {
		t.Fatal("aggregated display should still have candidates")
	}
	// The synthetic count column supports numeric filters but must not be
	// a regroup target.
	for _, a := range cands {
		if a.Type == ActionGroup && a.GroupBy == agg.ValueColumn {
			t.Errorf("regrouping by the aggregate column: %s", a)
		}
	}
}

func TestEnumerateDeterminism(t *testing.T) {
	root := trafficDisplay(t)
	a := EnumerateActions(root, EnumerateOptions{IncludeAggregates: true})
	b := EnumerateActions(root, EnumerateOptions{IncludeAggregates: true})
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("candidate %d differs: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestEnumerateFilterValueCap(t *testing.T) {
	root := trafficDisplay(t)
	cands := EnumerateActions(root, EnumerateOptions{MaxFilterValuesPerColumn: 1})
	perColumn := map[string]int{}
	for _, a := range cands {
		if a.Type == ActionFilter && a.Predicates[0].Op == OpEq {
			perColumn[a.Predicates[0].Column]++
		}
	}
	for col, n := range perColumn {
		if n > 1 {
			t.Errorf("column %s has %d equality filters, cap is 1", col, n)
		}
	}
}
