package obs

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// ValidatePrometheus is a strict checker for the Prometheus text format
// (version 0.0.4) this package emits — used by the /metrics tests and the
// CI smoke so a malformed scrape surface fails loudly instead of being
// silently dropped by a real scraper. It enforces more than the format
// grammar: every series must be preceded by HELP and TYPE lines for its
// family, no series may repeat (same name + label set), summary quantile
// series must carry a parseable quantile label, and every sample value
// must parse as a float.
func ValidatePrometheus(r io.Reader) error {
	var (
		helped   = map[string]bool{}
		typed    = map[string]string{}
		seen     = map[string]bool{}
		lastLine = 0
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		lastLine++
		line := sc.Text()
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !validMetricName(name) {
				return fmt.Errorf("line %d: malformed HELP line %q", lastLine, line)
			}
			if helped[name] {
				return fmt.Errorf("line %d: duplicate HELP for %q", lastLine, name)
			}
			helped[name] = true
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			fields := strings.Fields(rest)
			if len(fields) != 2 || !validMetricName(fields[0]) {
				return fmt.Errorf("line %d: malformed TYPE line %q", lastLine, line)
			}
			switch fields[1] {
			case "counter", "gauge", "summary", "histogram", "untyped":
			default:
				return fmt.Errorf("line %d: unknown metric type %q", lastLine, fields[1])
			}
			if _, dup := typed[fields[0]]; dup {
				return fmt.Errorf("line %d: duplicate TYPE for %q", lastLine, fields[0])
			}
			typed[fields[0]] = fields[1]
		case strings.HasPrefix(line, "#"):
			// Plain comment: legal, ignored.
		default:
			name, labels, value, err := parseSample(line)
			if err != nil {
				return fmt.Errorf("line %d: %w", lastLine, err)
			}
			fam := familyOf(name, typed)
			if !helped[fam] {
				return fmt.Errorf("line %d: series %q has no HELP for family %q", lastLine, name, fam)
			}
			if _, ok := typed[fam]; !ok {
				return fmt.Errorf("line %d: series %q has no TYPE for family %q", lastLine, name, fam)
			}
			key := name + labels
			if seen[key] {
				return fmt.Errorf("line %d: duplicate series %s%s", lastLine, name, labels)
			}
			seen[key] = true
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				return fmt.Errorf("line %d: sample value %q is not a float", lastLine, value)
			}
			if typed[fam] == "summary" && !strings.HasSuffix(name, "_sum") && !strings.HasSuffix(name, "_count") {
				q := labelValue(labels, "quantile")
				if q == "" {
					return fmt.Errorf("line %d: summary series %q lacks a quantile label", lastLine, name)
				}
				if f, err := strconv.ParseFloat(q, 64); err != nil || f < 0 || f > 1 {
					return fmt.Errorf("line %d: summary quantile %q out of [0,1]", lastLine, q)
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(seen) == 0 {
		return fmt.Errorf("no series found")
	}
	return nil
}

var metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

func validMetricName(s string) bool { return metricNameRe.MatchString(s) }

var sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)( \d+)?$`)

// parseSample splits one sample line into name, rendered label set and
// value, validating label syntax.
func parseSample(line string) (name, labels, value string, err error) {
	m := sampleRe.FindStringSubmatch(line)
	if m == nil {
		return "", "", "", fmt.Errorf("malformed sample line %q", line)
	}
	name, labels, value = m[1], m[2], m[3]
	if labels != "" {
		inner := labels[1 : len(labels)-1]
		for _, pair := range splitLabels(inner) {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || !validMetricName(k) || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return "", "", "", fmt.Errorf("malformed label %q in %q", pair, line)
			}
		}
	}
	return name, labels, value, nil
}

// splitLabels splits `k="v",k2="v2"` on commas outside quotes.
func splitLabels(s string) []string {
	var (
		out  []string
		cur  strings.Builder
		inQ  bool
		prev byte
	)
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '"' && prev != '\\' {
			inQ = !inQ
		}
		if c == ',' && !inQ {
			out = append(out, cur.String())
			cur.Reset()
		} else {
			cur.WriteByte(c)
		}
		prev = c
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

// familyOf maps a series name back to its metric family: summary series
// _sum/_count belong to the base family when that family is declared.
func familyOf(name string, typed map[string]string) string {
	for _, suf := range [...]string{"_sum", "_count", "_bucket"} {
		if strings.HasSuffix(name, suf) {
			base := strings.TrimSuffix(name, suf)
			if _, ok := typed[base]; ok {
				return base
			}
		}
	}
	return name
}

// labelValue extracts one label's (unescaped-enough) value from a
// rendered label set.
func labelValue(labels, key string) string {
	if labels == "" {
		return ""
	}
	for _, pair := range splitLabels(labels[1 : len(labels)-1]) {
		if k, v, ok := strings.Cut(pair, "="); ok && k == key && len(v) >= 2 {
			return v[1 : len(v)-1]
		}
	}
	return ""
}
