package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// sectionFile writes a model plus the given sections and returns the
// bytes.
func sectionFile(t *testing.T, secs ...Section) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSections(&buf, testModel(), secs...); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSectionsRoundTrip(t *testing.T) {
	s1 := Section{Kind: SectionKNNIndex, Version: KNNIndexVersion, Payload: []byte(`{"count":3}`)}
	data := sectionFile(t, s1)
	m, secs, err := ReadSections(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("no model")
	}
	if len(secs) != 1 || secs[0].Kind != s1.Kind || secs[0].Version != s1.Version || !bytes.Equal(secs[0].Payload, s1.Payload) {
		t.Fatalf("sections = %+v, want %+v", secs, s1)
	}
}

func TestSectionlessFileReadsFine(t *testing.T) {
	data := sectionFile(t) // no sections: an old-format file
	m, secs, err := ReadSections(bytes.NewReader(data))
	if err != nil || m == nil || len(secs) != 0 {
		t.Fatalf("sectionless read = (%v, %v, %v), want model and no sections", m != nil, secs, err)
	}
	// The sectionless Read path sees the same bytes.
	if m2, err := Read(bytes.NewReader(data)); err != nil || m2 == nil {
		t.Fatalf("Read on sectionless file = (%v, %v)", m2 != nil, err)
	}
}

// TestReadValidatesSectionsItDiscards: the whole-file validation contract
// — Read (which ignores section content) must still refuse a file whose
// trailing section is corrupt.
func TestReadValidatesSectionsItDiscards(t *testing.T) {
	data := sectionFile(t, Section{Kind: SectionKNNIndex, Version: KNNIndexVersion, Payload: []byte(`{"count":1}`)})
	bad := append([]byte(nil), data...)
	bad[len(bad)-12] ^= 0x01 // inside the section payload/checksum tail
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Fatal("Read accepted a file with a corrupt trailing section")
	}
}

func TestSectionUnknownKindIsNewerVersion(t *testing.T) {
	// A future writer emits a kind this build has never heard of, with a
	// correctly computed checksum — the loud, typed refusal.
	data := sectionFile(t)
	var buf bytes.Buffer
	buf.Write(data)
	future := Section{Kind: 999, Version: 1, Payload: []byte("future payload")}
	if err := writeSectionForTest(&buf, future); err != nil {
		t.Fatal(err)
	}
	_, _, err := ReadSections(bytes.NewReader(buf.Bytes()))
	if !errors.Is(err, ErrNewerVersion) {
		t.Fatalf("unknown kind err = %v, want ErrNewerVersion", err)
	}
}

func TestSectionNewerVersionRefused(t *testing.T) {
	data := sectionFile(t)
	var buf bytes.Buffer
	buf.Write(data)
	newer := Section{Kind: SectionKNNIndex, Version: KNNIndexVersion + 1, Payload: []byte("v2 payload")}
	if err := writeSectionForTest(&buf, newer); err != nil {
		t.Fatal(err)
	}
	_, _, err := ReadSections(bytes.NewReader(buf.Bytes()))
	if !errors.Is(err, ErrNewerVersion) {
		t.Fatalf("newer version err = %v, want ErrNewerVersion", err)
	}
}

// writeSectionForTest mirrors the production writer so tests can emit
// sections the production writer refuses to (unknown kinds, future
// versions) with valid checksums.
func writeSectionForTest(buf *bytes.Buffer, s Section) error {
	return writeSection(buf, s)
}

// TestSectionBitFlipSweep extends the envelope's single-bit corruption
// sweep over a section-bearing file: every flipped bit — section header
// fields, payload, checksum, and the model envelope apart from its
// version field — must refuse to load. The section checksum covers its
// header fields precisely so a version or flags flip cannot read as a
// different valid header; the model envelope's version field predates
// that hardening (its checksum covers only the payload, and a 1 → 0
// version flip still satisfies the <= Version compatibility rule), so it
// is the one region excluded here.
func TestSectionBitFlipSweep(t *testing.T) {
	payload := []byte(`{"leaf_size":8,"count":2,"root":0,"nodes":[{"v":-1,"in":-1,"out":-1,"leaf":[0,1]}]}`)
	good := sectionFile(t, Section{Kind: SectionKNNIndex, Version: KNNIndexVersion, Payload: payload})
	for pos := 0; pos < len(good); pos++ {
		if pos >= 8 && pos < 12 {
			continue // model envelope version field (see doc comment)
		}
		for _, mask := range []byte{0x01, 0x80} {
			bad := append([]byte(nil), good...)
			bad[pos] ^= mask
			if m, err := Read(bytes.NewReader(bad)); err == nil {
				t.Fatalf("bit flip at byte %d (mask %#x) of %d went undetected (model %v)", pos, mask, len(good), m != nil)
			}
			if _, _, err := ReadSections(bytes.NewReader(bad)); err == nil {
				t.Fatalf("ReadSections: bit flip at byte %d (mask %#x) went undetected", pos, mask)
			}
		}
	}
}

// TestSectionTruncation sweeps truncation points through the section
// tail: every cut must error, except cuts exactly at a section boundary
// (which legitimately read as a sectionless or shorter file).
func TestSectionTruncation(t *testing.T) {
	base := sectionFile(t)
	full := sectionFile(t, Section{Kind: SectionKNNIndex, Version: KNNIndexVersion, Payload: []byte(`{"count":9}`)})
	if len(full) <= len(base) {
		t.Fatal("section added no bytes")
	}
	for cut := len(base) + 1; cut < len(full); cut++ {
		if _, _, err := ReadSections(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at byte %d of %d went undetected", cut, len(full))
		}
	}
	// The boundary cut is the legitimate old-format file.
	if _, _, err := ReadSections(bytes.NewReader(full[:len(base)])); err != nil {
		t.Fatalf("boundary truncation should read as sectionless: %v", err)
	}
}

// TestMarshalSection round-trips a JSON value through the helper.
func TestMarshalSection(t *testing.T) {
	type wire struct {
		Count int `json:"count"`
	}
	s, err := MarshalSection(SectionKNNIndex, KNNIndexVersion, wire{Count: 7})
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != SectionKNNIndex || s.Version != KNNIndexVersion {
		t.Fatalf("marshaled section = %+v", s)
	}
	data := sectionFile(t, s)
	_, secs, err := ReadSections(bytes.NewReader(data))
	if err != nil || len(secs) != 1 {
		t.Fatalf("read = (%v, %v)", secs, err)
	}
	if !bytes.Equal(secs[0].Payload, []byte(`{"count":7}`)) {
		t.Fatalf("payload = %s", secs[0].Payload)
	}
}

// TestMultipleSectionsPreserveOrder: sections read back in write order.
func TestMultipleSectionsPreserveOrder(t *testing.T) {
	a := Section{Kind: SectionKNNIndex, Version: 1, Payload: []byte("first")}
	b := Section{Kind: SectionKNNIndex, Version: 1, Payload: []byte("second")}
	data := sectionFile(t, a, b)
	_, secs, err := ReadSections(bytes.NewReader(data))
	if err != nil || len(secs) != 2 {
		t.Fatalf("read = (%v, %v)", secs, err)
	}
	if string(secs[0].Payload) != "first" || string(secs[1].Payload) != "second" {
		t.Fatalf("order lost: %q, %q", secs[0].Payload, secs[1].Payload)
	}
}

// TestSectionDeclaredLengthCap: an absurd declared length refuses fast,
// without allocating it.
func TestSectionDeclaredLengthCap(t *testing.T) {
	data := sectionFile(t, Section{Kind: SectionKNNIndex, Version: KNNIndexVersion, Payload: []byte("x")})
	// The section header starts right after the base envelope; find it by
	// magic scan from the end (the payload is tiny).
	idx := bytes.LastIndex(data, []byte(sectionMagic))
	if idx < 0 {
		t.Fatal("no section magic in file")
	}
	bad := append([]byte(nil), data...)
	binary.BigEndian.PutUint64(bad[idx+20:idx+28], 1<<62)
	if _, _, err := ReadSections(bytes.NewReader(bad)); err == nil {
		t.Fatal("absurd declared length accepted")
	}
}
