// Package measures implements the eight interestingness measures of the
// paper's Table 1, grouped into the four facets (classes) Diversity,
// Dispersion, Peculiarity and Conciseness, plus a registry that supports
// user-defined measures.
//
// A measure scores an action q together with its results display d
// (i(q, d) in the paper); some measures additionally consult the parent
// display or the session's root display d0 (the Deviation measure's
// reference display). Higher scores mean "more interesting" with respect
// to the facet the measure captures.
package measures

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/engine"
)

// Class is an interestingness facet per the categorization in the paper
// (following Geng & Hamilton and Hilderman & Hamilton).
type Class uint8

const (
	Diversity Class = iota
	Dispersion
	Peculiarity
	Conciseness
)

// Classes lists all facets in canonical order.
var Classes = []Class{Diversity, Dispersion, Peculiarity, Conciseness}

// String returns the class name as used in the paper's figures.
func (c Class) String() string {
	switch c {
	case Diversity:
		return "Diversity"
	case Dispersion:
		return "Dispersion"
	case Peculiarity:
		return "Peculiarity"
	case Conciseness:
		return "Conciseness"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// ParseClass inverts Class.String.
func ParseClass(s string) (Class, error) {
	for _, c := range Classes {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("measures: unknown class %q", s)
}

// Context carries everything a measure may consult when scoring one action:
// the action, its results display, the parent display it was executed from,
// and the session's root display d0 (the reference display for
// deviation-based peculiarity). Distribution extraction is memoized, so
// scoring all eight measures against one Context profiles the display once.
type Context struct {
	Action  *engine.Action
	Display *engine.Display
	Parent  *engine.Display
	Root    *engine.Display

	once  sync.Once
	dists []Distribution
}

// Distribution is a named discrete probability distribution extracted from
// a display, with the raw magnitudes kept for element-level measures.
type Distribution struct {
	// Column is the display column the distribution describes; for an
	// aggregated display it is the group column.
	Column string
	// P are relative frequencies (sum to 1).
	P []float64
	// Raw are the underlying magnitudes (aggregate values or counts)
	// before normalization, aligned with P.
	Raw []float64
	// Keys are the string forms of the cell identities, aligned with P;
	// used to align against a reference display's distribution.
	Keys []string
}

// Distributions extracts (once) the display's distributions:
//
//   - For an aggregated display: one distribution over the groups, with
//     p_j = v_j / Σv_k exactly as in Table 1 of the paper.
//   - For a raw (filter-result) display: one distribution per column — the
//     value-frequency histogram for categorical columns, a 10-bin
//     equal-width histogram for numeric columns.
func (c *Context) Distributions() []Distribution {
	c.once.Do(func() { c.dists = extractDistributions(c.Display) })
	return c.dists
}

const numericBins = 10

func extractDistributions(d *engine.Display) []Distribution {
	if d == nil || d.Table == nil || d.Table.NumRows() == 0 {
		return nil
	}
	if d.Aggregated {
		vals := d.AggValues()
		keys := make([]string, d.Table.NumRows())
		col := d.Table.ColumnByName(d.GroupColumn)
		for i := range keys {
			if col != nil {
				keys[i] = col.Value(i).String()
			}
		}
		return []Distribution{makeDistribution(d.GroupColumn, keys, vals)}
	}
	prof := d.GetProfile()
	out := make([]Distribution, 0, len(prof.Columns))
	for _, cp := range prof.Columns {
		if cp.IsNumeric && cp.Distinct > numericBins {
			out = append(out, binnedNumericDistribution(d, cp.Name))
			continue
		}
		keys := make([]string, 0, len(cp.Freq))
		for k := range cp.Freq {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		raw := make([]float64, len(keys))
		for i, k := range keys {
			raw[i] = cp.Freq[k] * float64(prof.Rows)
		}
		out = append(out, makeDistribution(cp.Name, keys, raw))
	}
	return out
}

func binnedNumericDistribution(d *engine.Display, colName string) Distribution {
	col := d.Table.ColumnByName(colName)
	n := col.Len()
	lo, hi := math.Inf(1), math.Inf(-1)
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		f := col.Value(i).Float()
		vals[i] = f
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	raw := make([]float64, numericBins)
	width := (hi - lo) / numericBins
	for _, f := range vals {
		b := 0
		if width > 0 {
			b = int((f - lo) / width)
			if b >= numericBins {
				b = numericBins - 1
			}
		}
		raw[b]++
	}
	keys := make([]string, numericBins)
	for i := range keys {
		keys[i] = fmt.Sprintf("bin%d", i)
	}
	return makeDistribution(colName, keys, raw)
}

func makeDistribution(column string, keys []string, raw []float64) Distribution {
	p := make([]float64, len(raw))
	sum := 0.0
	for _, v := range raw {
		if v > 0 {
			sum += v
		}
	}
	if sum > 0 {
		for i, v := range raw {
			if v > 0 {
				p[i] = v / sum
			}
		}
	} else if len(raw) > 0 {
		u := 1 / float64(len(raw))
		for i := range p {
			p[i] = u
		}
	}
	return Distribution{Column: column, P: p, Raw: append([]float64(nil), raw...), Keys: keys}
}

// Measure scores the interestingness facet it captures; higher is more
// interesting. Implementations must be safe for concurrent use.
type Measure interface {
	// Name is the measure's unique registry name (e.g. "variance").
	Name() string
	// Class is the facet the measure belongs to.
	Class() Class
	// Score returns i(q, d) for the context's action and display.
	Score(ctx *Context) float64
}

// Score is a convenience that builds a one-off Context and scores it.
func Score(m Measure, q *engine.Action, display, parent, root *engine.Display) float64 {
	return m.Score(&Context{Action: q, Display: display, Parent: parent, Root: root})
}

// meanOverDistributions applies f to every distribution of the context's
// display and averages — the documented semantics for applying an
// aggregation-oriented measure to a raw display.
func meanOverDistributions(ctx *Context, f func(Distribution) float64) float64 {
	dists := ctx.Distributions()
	if len(dists) == 0 {
		return 0
	}
	s := 0.0
	for _, d := range dists {
		s += f(d)
	}
	return s / float64(len(dists))
}
