package knn

import (
	"math"

	"repro/internal/knn/index"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/session"
)

// Candidate is one nearest-neighbor candidate in wire-friendly form: the
// training sample's index, its distance from the query, and the sample's
// labels — everything the vote reads, nothing more. It is the unit the
// sharded serving tier ships from replicas to the router (DESIGN.md §11):
// a replica scans only its shard and returns its local top-k as
// Candidates; the router merges the per-shard lists and votes.
//
// Index is an opaque tie-break key to this package. For the distributed
// merge to be bit-identical to a single-process scan, every shard must
// report indexes from the same global numbering (the serving layer maps
// shard-local positions back to training order before merging).
type Candidate struct {
	Index  int      `json:"index"`
	Dist   float64  `json:"dist"`
	Labels []string `json:"labels,omitempty"`
}

// Candidates scans the classifier's whole training set and returns its
// top-k nearest candidates in ascending (dist, index) order, UNGATED by
// θ_δ. Ungated is deliberate: the θ_δ-gated neighbor set is exactly the
// dist ≤ θ_δ prefix-filter of the unbounded top-k (the gate preserves
// (dist, index) order, and any sample inside the gate that misses the
// unbounded top-k is beaten by k closer samples that are also inside),
// so one ungated list lets the merging router reproduce both the gated
// vote and the FallbackNearest re-vote without a second scan.
//
// Indexes are positions in this classifier's own sample slice.
func (c *Classifier) Candidates(query *session.Context) []Candidate {
	k := c.cfg.K
	w := parallel.Workers(c.cfg.Workers)
	var sorted []cand
	var st index.Stats
	if c.idx == nil && w > 1 && len(c.samples) >= minParallelScan {
		chunks := parallel.Chunks(len(c.samples), w)
		accs := make([]*topK, len(chunks))
		parallel.ForEachN(nil, len(chunks), w, func(ci int) {
			acc := newTopK(k)
			c.scanRange(query, chunks[ci][0], chunks[ci][1], acc, math.Inf(1))
			accs[ci] = acc
		})
		sorted = mergeTopK(k, accs)
		st.Visited = uint64(len(c.samples))
		if c.idxWanted && obs.On() {
			index.CountFallbackLinear()
		}
	} else {
		acc := newTopK(k)
		st = c.searchInto(query, acc, math.Inf(1))
		sorted = acc.drain()
	}
	if obs.On() {
		mScans.Inc()
		mDistEvals.Add(st.Visited)
	}
	out := make([]Candidate, len(sorted))
	for i, cd := range sorted {
		out[i] = Candidate{Index: cd.idx, Dist: cd.dist, Labels: c.samples[cd.idx].Labels}
	}
	return out
}

// MergeCandidates folds per-shard candidate lists into the global top-k
// in ascending (dist, index) order. Each shard's list holds the best k of
// its partition, so the union provably contains the global top-k — the
// same fan-in argument mergeTopK makes for per-worker accumulators, here
// applied across processes.
//
// Lists are deduplicated by training index before selection: replica
// failover can surface the same index in more than one list (a replica
// answering from a stale snapshot still reports the shard another node
// now also covers), and offering duplicates to the heap let one index
// occupy two of the k slots — and let whichever list arrived last pick
// the kept payload at equal distances. Deduped, every offered (dist,
// index) key is unique, so the kept set is a pure k-minimum under a
// strict total order: fixed by the keys, never by which replica answered
// first. Disagreeing duplicates keep the closest copy — the one the
// matching single-process scan would have measured.
func MergeCandidates(k int, lists ...[]Candidate) []Candidate {
	byIndex := make(map[int]Candidate, k*len(lists))
	for _, list := range lists {
		for _, cd := range list {
			if old, ok := byIndex[cd.Index]; !ok || cd.Dist < old.Dist {
				byIndex[cd.Index] = cd
			}
		}
	}
	merged := newTopK(k)
	for idx, cd := range byIndex {
		merged.add(cd.Dist, idx)
	}
	sorted := merged.drain()
	out := make([]Candidate, len(sorted))
	for i, cd := range sorted {
		out[i] = byIndex[cd.idx]
	}
	return out
}

// PredictFromCandidates reproduces the single-process predict path —
// θ_δ gate, tie-weighted vote, then the fallback rung — from a merged,
// ascending candidate list. Given the global top-k (MergeCandidates over
// every shard) and the model's own Config and prior, the result is
// bit-identical to Classifier.Predict on the undivided training set:
// same gate, same weights, same (votes, closeness, lexicographic)
// tie-break, same fallback semantics.
//
// The returned Prediction carries no Neighbors — the caller holds
// candidates, not samples.
func PredictFromCandidates(sorted []Candidate, cfg Config, prior string) Prediction {
	gated := sorted
	if !cfg.Unbounded {
		// The list is ascending by distance, so the gate is a prefix.
		cut := len(sorted)
		for i, cd := range sorted {
			if cd.Dist > cfg.ThetaDelta {
				cut = i
				break
			}
		}
		gated = sorted[:cut]
	}
	p := voteCandidates(gated)
	if p.Covered || cfg.Fallback == FallbackAbstain {
		return p
	}
	switch cfg.Fallback {
	case FallbackNearest:
		if np := voteCandidates(sorted); np.Covered {
			np.Fallback = true
			return np
		}
	case FallbackPrior:
		if prior != "" {
			p.Label = prior
			p.Covered = true
			p.Fallback = true
		}
	}
	return p
}

// voteCandidates tallies the tie-weighted vote over an already-selected,
// nearest-first candidate list — voteSorted's exact arithmetic, reading
// labels from Candidates instead of Samples.
func voteCandidates(sorted []Candidate) Prediction {
	if len(sorted) == 0 {
		return Prediction{Covered: false}
	}
	votes := make(map[string]float64, 4)
	closeness := make(map[string]float64, 4)
	for _, cd := range sorted {
		if len(cd.Labels) == 0 {
			continue
		}
		w := 1 / float64(len(cd.Labels))
		for _, l := range cd.Labels {
			votes[l] += w
			closeness[l] += (1 - cd.Dist) * w
		}
	}
	if len(votes) == 0 {
		return Prediction{Covered: false}
	}
	best := ""
	for l := range votes {
		if best == "" {
			best = l
			continue
		}
		switch {
		case votes[l] > votes[best]:
			best = l
		case votes[l] == votes[best]:
			if closeness[l] > closeness[best] || (closeness[l] == closeness[best] && l < best) {
				best = l
			}
		}
	}
	return Prediction{Label: best, Votes: votes, Covered: true}
}
