package buildinfo

import (
	"runtime/debug"
	"strings"
	"testing"
)

func TestGetAlwaysPopulated(t *testing.T) {
	i := Get()
	if i.Version == "" || i.GoVersion == "" {
		t.Fatalf("build info must always carry version and toolchain: %+v", i)
	}
	if Get() != i {
		t.Fatal("Get must be stable across calls")
	}
}

func TestReadExtractsVCSSettings(t *testing.T) {
	bi := &debug.BuildInfo{GoVersion: "go1.24.0"}
	bi.Main.Version = "v1.2.3"
	bi.Settings = []debug.BuildSetting{
		{Key: "vcs.revision", Value: "abcdef1234567890"},
		{Key: "vcs.time", Value: "2026-08-08T00:00:00Z"},
		{Key: "vcs.modified", Value: "true"},
	}
	i := read(bi, true)
	if i.Version != "v1.2.3" || i.Revision != "abcdef1234567890" || !i.Dirty || i.Time == "" {
		t.Fatalf("read = %+v", i)
	}
	s := i.String()
	for _, want := range []string{"v1.2.3", "go1.24.0", "rev abcdef123456", "(dirty)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestReadDegradesWithoutMetadata(t *testing.T) {
	i := read(nil, false)
	if i.Version != "unknown" || i.GoVersion == "" {
		t.Fatalf("read(nil) = %+v", i)
	}
	if i.Revision != "" || i.Dirty {
		t.Fatalf("read(nil) invented VCS state: %+v", i)
	}
}
