package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/atomicio"
	"repro/internal/loadtest"
	"repro/internal/snapshot"
)

// cmdLoadtest drives a prediction server — a live one via -addr, or a
// snapshot served in-process via -model — at a configured QPS for a
// fixed duration, and writes the LOAD_<date>.json artifact. The command
// exits non-zero when the run violates its SLOs (-slo-p99, -slo-errors,
// -slo-shed, -slo-minqps), so CI can gate on serving performance the
// same way BENCH_<date>.json gates on kernel performance.
func cmdLoadtest(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("loadtest", flag.ExitOnError)
	addr := fs.String("addr", "", "target server base URL(s), comma-separated; several targets round-robin the offered load (e.g. a ring's replicas or routers)")
	model := fs.String("model", "", "predictor snapshot to serve in-process instead of targeting -addr")
	ctxPath := fs.String("contexts", "", "wire-context JSON array (written by idarepro train -contexts); bodies are round-robined")
	qps := fs.Float64("qps", 200, "offered request rate (open-loop: arrivals are scheduled, not paced by responses)")
	conc := fs.Int("c", 0, "concurrent in-flight requests (0 = one per CPU)")
	duration := fs.Duration("duration", 10*time.Second, "arrival-schedule window")
	reqTimeout := fs.Duration("reqtimeout", 5*time.Second, "per-request timeout")
	deadline := fs.Duration("deadline", 0, "stamp each request with this X-Deadline-Ms budget so deadline-aware servers fast-fail doomed work (0 = off)")
	sloP99 := fs.Duration("slo-p99", 0, "fail the run when p99 latency exceeds this (0 = off)")
	sloErrors := fs.Float64("slo-errors", 0, "fail the run when the error rate exceeds this fraction (negative = off)")
	sloShed := fs.Float64("slo-shed", -1, "fail the run when the 503-shed rate exceeds this fraction (negative = off)")
	sloTimeouts := fs.Float64("slo-timeouts", -1, "fail the run when the timeout rate (504s + transport timeouts) exceeds this fraction (negative = off)")
	sloMinQPS := fs.Float64("slo-minqps", 0, "fail the run when achieved throughput falls below this (0 = off)")
	out := fs.String("out", "", "artifact path (default LOAD_<date>.json; \"-\" to skip the file)")
	asJSON := fs.Bool("json", false, "print the result as JSON on stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *ctxPath == "" {
		return fmt.Errorf("loadtest: -contexts FILE is required")
	}
	if (*addr == "") == (*model == "") {
		return fmt.Errorf("loadtest: exactly one of -addr or -model is required")
	}
	blob, err := os.ReadFile(*ctxPath)
	if err != nil {
		return err
	}
	var wire []*snapshot.WireContext
	if err := json.Unmarshal(blob, &wire); err != nil {
		return fmt.Errorf("loadtest: parse %s: %w", *ctxPath, err)
	}
	if len(wire) == 0 {
		return fmt.Errorf("loadtest: %s holds no contexts", *ctxPath)
	}
	bodies := make([][]byte, len(wire))
	for i, wc := range wire {
		b, err := json.Marshal(struct {
			Context *snapshot.WireContext `json:"context"`
		}{wc})
		if err != nil {
			return fmt.Errorf("loadtest: encode context %d: %w", i, err)
		}
		bodies[i] = b
	}

	var targets []string
	if *addr != "" {
		for _, u := range strings.Split(*addr, ",") {
			if u = strings.TrimSpace(u); u != "" {
				targets = append(targets, u)
			}
		}
		if len(targets) == 0 {
			return fmt.Errorf("loadtest: -addr lists no targets")
		}
	}
	opts := loadtest.Options{
		BaseURLs:       targets,
		Bodies:         bodies,
		QPS:            *qps,
		Concurrency:    *conc,
		Duration:       *duration,
		RequestTimeout: *reqTimeout,
		Deadline:       *deadline,
		SLO: loadtest.SLO{
			MaxP99:         *sloP99,
			MaxErrorRate:   *sloErrors,
			MaxShedRate:    *sloShed,
			MaxTimeoutRate: *sloTimeouts,
			MinQPS:         *sloMinQPS,
		},
	}
	if *model != "" {
		pred, err := repro.LoadPredictor(*model)
		if err != nil {
			return err
		}
		if workerCount != 0 {
			pred.SetWorkers(workerCount)
		}
		opts.Handler = pred.Handler(repro.ServeOptions{})
		fmt.Fprintf(os.Stderr, "loadtest: serving %s in-process (%d samples)\n", *model, pred.TrainingSize())
	}

	res, err := loadtest.Run(ctx, opts)
	if err != nil {
		return err
	}

	resBlob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	resBlob = append(resBlob, '\n')
	if *asJSON {
		os.Stdout.Write(resBlob)
	} else {
		fmt.Printf("loadtest: %d requests in %.1fs (offered %.0f qps, achieved %.1f qps, mode %s)\n",
			res.Requests, res.ElapsedSec, res.TargetQPS, res.AchievedQPS, res.Mode)
		fmt.Printf("  outcomes: %d ok, %d abstain, %d degraded, %d shed, %d timeouts, %d errors\n",
			res.OK, res.Abstain, res.Degraded, res.Shed, res.Timeouts, res.Errors)
		fmt.Printf("  latency: p50 %v  p90 %v  p99 %v  p999 %v  max %v\n",
			time.Duration(res.Latency.P50NS), time.Duration(res.Latency.P90NS),
			time.Duration(res.Latency.P99NS), time.Duration(res.Latency.P999NS),
			time.Duration(res.Latency.MaxNS))
	}
	if *out != "-" {
		path := *out
		if path == "" {
			path = "LOAD_" + res.Date + ".json"
		}
		if err := atomicio.WriteFile(path, func(w io.Writer) error {
			_, werr := w.Write(resBlob)
			return werr
		}); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "wrote", path)
	}
	if len(res.Violations) > 0 {
		for _, v := range res.Violations {
			fmt.Fprintln(os.Stderr, "loadtest: SLO violation:", v)
		}
		return fmt.Errorf("loadtest: %d SLO violation(s)", len(res.Violations))
	}
	return nil
}
