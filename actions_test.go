package repro

import (
	"testing"
	"time"

	"repro/internal/engine"
)

func TestActionBuilders(t *testing.T) {
	g := GroupCount("protocol")
	if g.Type != engine.ActionGroup || g.Agg != engine.AggCount {
		t.Errorf("GroupCount = %v", g)
	}
	ga := GroupAgg("proto", Sum, "length")
	if ga.Agg != engine.AggSum || ga.AggColumn != "length" {
		t.Errorf("GroupAgg = %v", ga)
	}
	for _, agg := range []engine.AggFunc{Sum, Avg, Min, Max} {
		a := GroupAgg("g", agg, "v")
		if a.Agg != agg {
			t.Errorf("agg constant mismatch: %v", agg)
		}
	}
	f := Filter(Eq("a", Str("x")), Gt("b", Int(5)))
	if f.Type != engine.ActionFilter || len(f.Predicates) != 2 {
		t.Errorf("Filter = %v", f)
	}
}

func TestPredicateBuilders(t *testing.T) {
	cases := []struct {
		p   Predicate
		op  engine.CompareOp
		col string
	}{
		{Eq("c", Int(1)), engine.OpEq, "c"},
		{Neq("c", Int(1)), engine.OpNeq, "c"},
		{Lt("c", Int(1)), engine.OpLt, "c"},
		{Le("c", Int(1)), engine.OpLe, "c"},
		{Gt("c", Int(1)), engine.OpGt, "c"},
		{Ge("c", Int(1)), engine.OpGe, "c"},
		{Contains("c", Str("x")), engine.OpContains, "c"},
	}
	for _, c := range cases {
		if c.p.Op != c.op || c.p.Column != c.col {
			t.Errorf("predicate %v: op=%v col=%q", c.p, c.p.Op, c.p.Column)
		}
	}
}

func TestValueBuilders(t *testing.T) {
	if Str("x").String() != "x" {
		t.Error("Str")
	}
	if Int(-3).String() != "-3" {
		t.Error("Int")
	}
	if Float(2.5).Float() != 2.5 {
		t.Error("Float")
	}
	ts := time.Date(2020, 1, 2, 3, 4, 5, 0, time.UTC)
	if !Time(ts).Time().Equal(ts) {
		t.Error("Time")
	}
}

func TestBuildersDriveARealSession(t *testing.T) {
	tables := GenerateDatasets(NetlogConfig{Rows: 500})
	s := NewSession("builders", tables[1])
	if _, err := s.Apply(Filter(Eq("protocol", Str("HTTP")), Ge("hour", Int(8)))); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(GroupAgg("dst_ip", Avg, "length")); err != nil {
		t.Fatal(err)
	}
	if s.Steps() != 2 || !s.Current().Display.Aggregated {
		t.Error("builder-driven session wrong")
	}
	scores, err := ScoreAll(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 8 {
		t.Errorf("ScoreAll size = %d", len(scores))
	}
}

func TestNormalizedScoresFacade(t *testing.T) {
	fw := testFramework(t)
	tbl := fw.Repo.RootDisplay(fw.Repo.DatasetNames()[0]).Table
	s := NewSession("ns", tbl)
	if _, err := s.Apply(GroupCount("protocol")); err != nil {
		t.Fatal(err)
	}
	z, err := fw.NormalizedScores(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(z) != 8 {
		t.Fatalf("normalized scores = %d", len(z))
	}
	// All finite.
	for name, v := range z {
		if v != v || v > 1e6 || v < -1e6 {
			t.Errorf("z[%s] = %v", name, v)
		}
	}
	// Requires analysis.
	bare := &Framework{}
	if _, err := bare.NormalizedScores(s); err == nil {
		t.Error("must require analysis")
	}
	// Requires an action.
	fresh := NewSession("empty", tbl)
	if _, err := fw.NormalizedScores(fresh); err == nil {
		t.Error("must require at least one action")
	}
}

func TestPredictOnRawContext(t *testing.T) {
	fw := testFramework(t)
	pred, err := fw.TrainPredictor(DefaultMeasureSet(), Normalized, PredictorConfig{N: 2, K: 3, ThetaDelta: 0.5, ThetaI: -10})
	if err != nil {
		t.Fatal(err)
	}
	s := fw.Repo.SuccessfulSessions()[0]
	ctx, err := ExtractContext(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	label, ok := pred.Predict(ctx)
	if ok && label == "" {
		t.Error("covered prediction with empty label")
	}
	detail := pred.PredictWithVotes(ctx)
	if detail.Covered != ok {
		t.Error("PredictWithVotes coverage mismatch")
	}
}
