package repro

import (
	"context"
	"errors"
	"testing"
	"time"
)

// requirePipelineError asserts err is a typed *PipelineError that unwraps
// to a context cancellation, and returns it.
func requirePipelineError(t *testing.T, err error) *PipelineError {
	t.Helper()
	if err == nil {
		t.Fatal("expected an error from a canceled context")
	}
	var pe *PipelineError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v (%T) is not a *PipelineError", err, err)
	}
	if pe.Stage == "" {
		t.Error("PipelineError has no stage")
	}
	if !IsCanceled(err) {
		t.Errorf("IsCanceled(%v) = false", err)
	}
	if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error %v does not unwrap to a context error", err)
	}
	return pe
}

func canceledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

func TestRunOfflineAnalysisContextCanceled(t *testing.T) {
	fw := testFramework(t)
	fresh := NewFramework(fw.Repo)
	err := fresh.RunOfflineAnalysisContext(canceledCtx(), AnalysisOptions{RefLimit: 20, MinRefs: 2})
	requirePipelineError(t, err)
	if fresh.Analysis != nil {
		t.Error("canceled analysis must not be stored")
	}
}

func TestRunOfflineAnalysisContextDeadline(t *testing.T) {
	fw := testFramework(t)
	fresh := NewFramework(fw.Repo)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Microsecond) // let the deadline expire
	err := fresh.RunOfflineAnalysisContext(ctx, AnalysisOptions{RefLimit: 20, MinRefs: 2})
	pe := requirePipelineError(t, err)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("cause = %v, want DeadlineExceeded", pe.Err)
	}
}

func TestTrainPredictorContextCanceled(t *testing.T) {
	fw := testFramework(t)
	_, err := fw.TrainPredictorContext(canceledCtx(), DefaultMeasureSet(), Normalized,
		PredictorConfig{N: 2, K: 3, ThetaDelta: 0.25, ThetaI: 0})
	requirePipelineError(t, err)
}

func testContexts(t *testing.T, fw *Framework, n, limit int) []*NContext {
	t.Helper()
	var out []*NContext
	for _, s := range fw.Repo.Sessions() {
		ctx, err := ExtractContext(s, n)
		if err != nil {
			continue
		}
		out = append(out, ctx)
		if len(out) == limit {
			break
		}
	}
	if len(out) == 0 {
		t.Fatal("no extractable contexts")
	}
	return out
}

func TestPredictContextCanceled(t *testing.T) {
	fw, pred := trainedPredictor(t)
	q := testContexts(t, fw, 2, 1)[0]
	if _, _, err := pred.PredictContext(canceledCtx(), q); err == nil {
		t.Fatal("expected error")
	} else {
		requirePipelineError(t, err)
	}
	// A live context predicts normally and matches the ctx-less path.
	label, ok, err := pred.PredictContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	wantLabel, wantOK := pred.Predict(q)
	if label != wantLabel || ok != wantOK {
		t.Errorf("PredictContext = (%q, %v), Predict = (%q, %v)", label, ok, wantLabel, wantOK)
	}
}

func TestPredictAllContextCanceled(t *testing.T) {
	fw, pred := trainedPredictor(t)
	qs := testContexts(t, fw, 2, 16)
	out, err := pred.PredictAllContext(canceledCtx(), qs)
	pe := requirePipelineError(t, err)
	if len(out) != len(qs) {
		t.Fatalf("partial result length %d, want %d", len(out), len(qs))
	}
	if pe.Done < 0 || pe.Done > pe.Total || pe.Total != len(qs) {
		t.Errorf("progress %d/%d out of range for %d queries", pe.Done, pe.Total, len(qs))
	}
	// And the live path is unchanged.
	got, err := pred.PredictAllContext(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	want := pred.PredictAll(qs)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("query %d: ctx path %+v, plain path %+v", i, got[i], want[i])
		}
	}
}
