package effectiveness

import (
	"sync"
	"testing"

	"repro/internal/measures"
	"repro/internal/netlog"
	"repro/internal/offline"
	"repro/internal/simulate"
)

var (
	once sync.Once
	anal *offline.Analysis
	err  error
)

func analysis(t *testing.T) *offline.Analysis {
	t.Helper()
	once.Do(func() {
		r, e := simulate.Generate(simulate.Config{
			Analysts:      8,
			Sessions:      48,
			SuccessRate:   0.5,
			Seed:          17,
			DatasetConfig: netlog.Config{Rows: 900},
		})
		if e != nil {
			err = e
			return
		}
		anal, err = offline.Analyze(r, offline.Options{SkipReference: true})
	})
	if err != nil {
		t.Fatal(err)
	}
	return anal
}

func TestScoreSessionsCoversAllScorable(t *testing.T) {
	a := analysis(t)
	scores := ScoreSessions(a, measures.DefaultSet(), offline.Normalized, 0.7)
	if len(scores) == 0 {
		t.Fatal("no session scores")
	}
	for _, s := range scores {
		if len(s.Trajectory) == 0 {
			t.Fatalf("session %s has empty trajectory", s.SessionID)
		}
		if s.FracInteresting < 0 || s.FracInteresting > 1 {
			t.Errorf("session %s frac = %v", s.SessionID, s.FracInteresting)
		}
	}
	// Every session with actions should be scored under Normalized
	// (which always yields a dominant measure).
	if len(scores) != len(a.Repo.Sessions()) {
		t.Errorf("scored %d of %d sessions", len(scores), len(a.Repo.Sessions()))
	}
}

func TestCompareSuccessfulVsUnsuccessful(t *testing.T) {
	a := analysis(t)
	scores := ScoreSessions(a, measures.DefaultSet(), offline.Normalized, 0.7)
	sep, err := Compare(scores, 500, 42)
	if err != nil {
		t.Fatal(err)
	}
	if sep.SuccessfulN == 0 || sep.UnsuccessfulN == 0 {
		t.Fatal("split degenerate")
	}
	if sep.PValue <= 0 || sep.PValue > 1 {
		t.Errorf("p-value = %v", sep.PValue)
	}
	// The sign of the difference is a property of the analysed log, not
	// of the machinery (the paper proposes this as a future meta-task,
	// without an evaluated claim); assert internal consistency and log
	// the separation for inspection.
	if got := sep.SuccessfulMean - sep.UnsuccessMean; got != sep.Diff {
		t.Errorf("diff bookkeeping wrong: %v vs %v", got, sep.Diff)
	}
	t.Logf("effectiveness separation: success %.3f vs failure %.3f (diff %.3f, p=%.4f)",
		sep.SuccessfulMean, sep.UnsuccessMean, sep.Diff, sep.PValue)
}

func TestCompareDeterminism(t *testing.T) {
	a := analysis(t)
	scores := ScoreSessions(a, measures.DefaultSet(), offline.Normalized, 0.7)
	s1, err := Compare(scores, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Compare(scores, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if s1.PValue != s2.PValue {
		t.Error("same seed must give the same p-value")
	}
}

func TestCompareNeedsBothClasses(t *testing.T) {
	onlySucc := []SessionScore{{Successful: true, Mean: 1}, {Successful: true, Mean: 2}}
	if _, err := Compare(onlySucc, 100, 1); err == nil {
		t.Error("single-class comparison must fail")
	}
}

func TestRankAndByAnalyst(t *testing.T) {
	scores := []SessionScore{
		{SessionID: "b", Analyst: "x", Mean: 0.5},
		{SessionID: "a", Analyst: "y", Mean: 0.9},
		{SessionID: "c", Analyst: "x", Mean: 0.7},
	}
	ranked := Rank(scores)
	if ranked[0].SessionID != "a" || ranked[2].SessionID != "b" {
		t.Errorf("rank order = %v, %v, %v", ranked[0].SessionID, ranked[1].SessionID, ranked[2].SessionID)
	}
	byA := ByAnalyst(scores)
	if len(byA) != 2 {
		t.Fatalf("analysts = %d", len(byA))
	}
	if byA[0].Analyst != "y" {
		t.Errorf("top analyst = %s", byA[0].Analyst)
	}
	if byA[1].Sessions != 2 {
		t.Errorf("x sessions = %d", byA[1].Sessions)
	}
}
