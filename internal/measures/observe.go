package measures

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// measureStats caches the telemetry handles of one measure so scoring
// loops never touch the obs registry by name.
type measureStats struct {
	evals *obs.Counter
	ns    *obs.Histogram
}

var (
	msMu     sync.RWMutex
	msByName = make(map[string]*measureStats)
)

func statsFor(name string) *measureStats {
	msMu.RLock()
	st := msByName[name]
	msMu.RUnlock()
	if st != nil {
		return st
	}
	msMu.Lock()
	defer msMu.Unlock()
	if st = msByName[name]; st == nil {
		st = &measureStats{
			evals: obs.C("measures." + name + ".evals"),
			ns:    obs.H("measures." + name + ".ns"),
		}
		msByName[name] = st
	}
	return st
}

// ObservedScore scores the context with the measure while recording the
// measure's evaluation count and (under ModeTiming) its latency. The
// offline analysis scores through this wrapper so every i(q, d) evaluation
// — recorded actions and reference alternatives alike — is visible in the
// telemetry snapshot.
func ObservedScore(m Measure, ctx *Context) float64 {
	if !obs.On() {
		return m.Score(ctx)
	}
	st := statsFor(m.Name())
	st.evals.Inc()
	if !obs.Timing() {
		return m.Score(ctx)
	}
	t0 := time.Now()
	v := m.Score(ctx)
	st.ns.ObserveSince(t0)
	return v
}
