package dataset

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestCSVRoundTrip(t *testing.T) {
	b := NewBuilder("rt", Schema{
		{Name: "name", Kind: KindString},
		{Name: "n", Kind: KindInt},
		{Name: "x", Kind: KindFloat},
		{Name: "when", Kind: KindTime},
	})
	ts := time.Date(2019, 3, 26, 9, 0, 0, 0, time.UTC)
	b.Append(S("alpha, with comma"), I(1), F(1.5), T(ts))
	b.Append(S(`quoted "text"`), I(-2), F(0.001), T(ts.Add(time.Hour)))
	orig := b.MustBuild()

	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "rt")
	if err != nil {
		t.Fatal(err)
	}
	if !back.Schema().Equal(orig.Schema()) {
		t.Fatalf("schema changed: %v vs %v", back.Schema(), orig.Schema())
	}
	if back.NumRows() != orig.NumRows() {
		t.Fatalf("rows = %d, want %d", back.NumRows(), orig.NumRows())
	}
	for i := 0; i < orig.NumRows(); i++ {
		for j := 0; j < orig.NumCols(); j++ {
			if !back.Cell(i, j).Equal(orig.Cell(i, j)) {
				t.Errorf("cell (%d,%d): %v vs %v", i, j, back.Cell(i, j), orig.Cell(i, j))
			}
		}
	}
}

func TestReadCSVWithoutKindsRow(t *testing.T) {
	in := "a,b\nx,1\ny,2\n"
	tbl, err := ReadCSV(strings.NewReader(in), "plain")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	// Without a kinds row everything is a string.
	if tbl.ColumnByName("b").Kind != KindString {
		t.Error("kind should default to string")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), "x"); err == nil {
		t.Error("empty input should fail")
	}
	badCell := "a\n#kinds:int\nnotanint\n"
	if _, err := ReadCSV(strings.NewReader(badCell), "x"); err == nil {
		t.Error("bad cell should fail")
	}
}

// TestReadCSVSentinelNotAKindsRow pins the sentinel-collision fix: a
// schema-less CSV whose first data cell merely begins with "#kinds:" must
// come back as data, not be swallowed as a schema row or rejected.
func TestReadCSVSentinelNotAKindsRow(t *testing.T) {
	in := "a,b\n#kinds:bogus,1\nplain,2\n"
	tbl, err := ReadCSV(strings.NewReader(in), "x")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2 (sentinel row swallowed?)", tbl.NumRows())
	}
	if got := tbl.Cell(0, 0).String(); got != "#kinds:bogus" {
		t.Errorf("cell(0,0) = %q, want the literal sentinel-shaped value", got)
	}
	// A width-mismatched sentinel row is data too (and then fails the
	// ordinary row-width check).
	if _, err := ReadCSV(strings.NewReader("a,b\n#kinds:string\n"), "x"); err == nil {
		t.Error("width-mismatched row should fail as a data row")
	}
}

// TestCSVSentinelRoundTrip writes tables whose first-column values collide
// with the kinds sentinel (raw and pre-escaped) and checks they survive the
// write→read round trip byte-identically.
func TestCSVSentinelRoundTrip(t *testing.T) {
	for _, cell := range []string{"#kinds:string", "#kinds:whatever", "##kinds:already", "###kinds:deep", "#kinds:", "plain"} {
		b := NewBuilder("s", Schema{{Name: "a", Kind: KindString}, {Name: "n", Kind: KindInt}})
		b.Append(S(cell), I(7))
		orig := b.MustBuild()
		var buf bytes.Buffer
		if err := WriteCSV(&buf, orig); err != nil {
			t.Fatal(err)
		}
		back, err := ReadCSV(&buf, "s")
		if err != nil {
			t.Fatalf("cell %q: %v", cell, err)
		}
		if back.NumRows() != 1 || !back.Cell(0, 0).Equal(S(cell)) {
			t.Errorf("cell %q round-tripped to %q", cell, back.Cell(0, 0))
		}
		if back.ColumnByName("n").Kind != KindInt {
			t.Errorf("cell %q: kinds row lost", cell)
		}
	}
}

// TestBaseName pins the filepath.Base fix: the hand-rolled '/' split broke
// trailing separators (empty name) and only understood one separator.
func TestBaseName(t *testing.T) {
	cases := map[string]string{
		"data/packets.csv":      "packets.csv",
		"packets.csv":           "packets.csv",
		"/abs/path/flows.csv":   "flows.csv",
		"data/":                 "data",
		"a/b/c/connections.csv": "connections.csv",
	}
	for in, want := range cases {
		if got := baseName(in); got != want {
			t.Errorf("baseName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestSaveCSVAtomicOnFailedWrite simulates a mid-save failure (destination
// directory removed out from under the writer is hard to fake portably, so
// we point the save at a directory path, which must fail) and checks a
// pre-existing file survives a failed overwrite byte-identically.
func TestSaveCSVAtomicOnFailedWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "keep.csv")
	b := NewBuilder("keep", Schema{{Name: "v", Kind: KindInt}})
	b.Append(I(1))
	if err := SaveCSV(path, b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Saving into a missing directory fails before any rename can happen.
	if err := SaveCSV(filepath.Join(dir, "absent", "x.csv"), b.MustBuild()); err == nil {
		t.Error("save into missing directory should fail")
	}
	after, err := os.ReadFile(path)
	if err != nil || !bytes.Equal(before, after) {
		t.Fatalf("existing file disturbed: %v", err)
	}
}

func TestSaveLoadCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mini.csv")
	b := NewBuilder("mini", Schema{{Name: "v", Kind: KindInt}})
	b.Append(I(10))
	b.Append(I(20))
	orig := b.MustBuild()
	if err := SaveCSV(path, orig); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSV(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != "mini" {
		t.Errorf("name from path = %q, want mini", back.Name())
	}
	if back.NumRows() != 2 || !back.Cell(1, 0).Equal(I(20)) {
		t.Errorf("loaded content wrong")
	}
	if _, err := LoadCSV(filepath.Join(dir, "absent.csv"), ""); err == nil {
		t.Error("loading a missing file should fail")
	}
}
