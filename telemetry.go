package repro

import (
	"repro/internal/obs"
)

// TelemetrySnapshot is a JSON-serializable point-in-time copy of every
// pipeline metric: counters (memo hits/misses, kNN scans and distance
// evaluations, reference-set enumeration, Box-Cox λ-search iterations,
// per-measure evaluation counts, generation throughput), gauges (memo
// size) and latency histograms (per-measure scoring, stage timings for
// gen → offline → train → predict). Table() renders it as an aligned
// plain-text table.
type TelemetrySnapshot = obs.Snapshot

// TelemetryLevel selects how much the pipeline records.
type TelemetryLevel = obs.Mode

const (
	// TelemetryOff records nothing; every instrumentation probe costs a
	// single atomic load.
	TelemetryOff = obs.ModeOff
	// TelemetryCounters (the default) records counters, gauges and coarse
	// pipeline-stage timings, but skips per-event latency histograms so
	// hot paths take no clock reads.
	TelemetryCounters = obs.ModeCounters
	// TelemetryTiming additionally records fine-grained latencies
	// (per-measure scoring, per-tree-edit-call).
	TelemetryTiming = obs.ModeTiming
)

// Telemetry snapshots the process-wide pipeline telemetry. Safe to call
// at any time, including concurrently with a running analysis.
func Telemetry() TelemetrySnapshot { return obs.Default.Snapshot() }

// SetTelemetryLevel switches the recording tier (see the TelemetryLevel
// constants).
func SetTelemetryLevel(l TelemetryLevel) { obs.SetMode(l) }

// ResetTelemetry zeroes every metric (level and metric handles are kept),
// so subsequent snapshots report deltas from this point.
func ResetTelemetry() { obs.Default.Reset() }

// ServeTelemetry publishes the telemetry snapshot to expvar (name
// "idarepro") and starts an HTTP server on addr exposing /debug/vars and
// /debug/pprof/. It returns the bound address (use ":0" to pick a free
// port) without blocking. The equivalent CLI switch is
// `idarepro -telemetry ADDR`.
func ServeTelemetry(addr string) (string, error) { return obs.ServeTelemetry(addr) }
