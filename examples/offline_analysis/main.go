// Offline_analysis runs both interestingness comparison methods of
// Section 3.1 over a simulated session log and reports how they behave:
// per-class dominant-measure frequencies, within-session churn, and the
// agreement between the two methods — the Section 4.1 findings in
// miniature.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/measures"
	"repro/internal/netlog"
	"repro/internal/offline"
	"repro/internal/simulate"
)

func main() {
	fmt.Println("simulating a session log...")
	repo, err := simulate.Generate(simulate.Config{
		Sessions:      140,
		Analysts:      16,
		DatasetConfig: netlog.Config{Rows: 1500},
	})
	if err != nil {
		log.Fatal(err)
	}
	st := repo.ComputeStats()
	fmt.Printf("%d sessions / %d actions over %d datasets\n\n", st.Sessions, st.Actions, st.Datasets)

	fmt.Println("running the offline interestingness analysis (both methods)...")
	a, err := offline.Analyze(repo, offline.Options{RefLimit: 60})
	if err != nil {
		log.Fatal(err)
	}

	I := measures.DefaultSet()
	w := os.Stdout
	for _, m := range offline.Methods {
		fmt.Fprintf(w, "\n--- %s comparison ---\n", m)
		freq := offline.ClassFrequency(a, I, m)
		for _, c := range measures.Classes {
			fmt.Fprintf(w, "  dominant %-12s %6.1f%%\n", c.String(), 100*freq[c])
		}
		ch := offline.Churn(a, I, m)
		fmt.Fprintf(w, "  the dominant measure changes every %.2f steps (paper: 2.2)\n", ch.StepsPerChange)
	}

	ag, err := offline.Agreement(a, I)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmethods agree exactly on %.1f%% of actions (paper: 68%%)\n", 100*ag.Rate)
	fmt.Printf("chi-square independence test: stat=%.1f df=%d ln(p)=%.1f — strongly dependent\n",
		ag.ChiSquare.Statistic, ag.ChiSquare.DF, ag.ChiSquare.LogPValue)

	rep := offline.Correlations(a)
	fmt.Printf("\nscore correlations: same-class %.3f vs cross-class %.3f (paper: 0.543 vs 0.071)\n",
		rep.SameClass, rep.CrossClass)
	fmt.Println("=> picking one measure per class yields a near-independent configuration I")

	fmt.Printf("\noffline cost per action: reference-based %v vs normalized %v\n",
		a.RefTimings.PerAction().Total(), a.NormTimings.PerAction().Total())
}
