package eval

import (
	"context"
	"math"
	"sort"
	"strconv"

	"repro/internal/distance"
	"repro/internal/faults"
	"repro/internal/knn"
	"repro/internal/measures"
	"repro/internal/obs"
	"repro/internal/offline"
	"repro/internal/parallel"
	"repro/internal/pipeline"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/svm"
)

// mPairDropped counts pairwise distances lost to faults after retries
// (they degrade to +Inf — "too far to be neighbors"); mOutcomeDropped
// counts LOOCV outcomes degraded to abstentions the same way.
var (
	mPairDropped    = obs.C("eval.pairwise.dropped")
	mOutcomeDropped = obs.C("eval.loocv.dropped")
)

// sampleFP is the content fingerprint used as a fault-probe key for one
// sample: stable across runs and worker counts, unlike pointers or call
// order.
func sampleFP(s *offline.Sample) string {
	return s.Context.SessionID + "@" + strconv.Itoa(s.Context.T) + "/" + strconv.Itoa(s.Context.N)
}

// EvalSet is a prepared evaluation dataset for one (I, method, n) triple:
// the unfiltered labeled samples, their pairwise context distances and,
// per sample, the neighbor indices sorted by distance. From one EvalSet
// any (k, θ_δ, θ_I) configuration evaluates in O(samples·k) — the
// precomputation that makes the paper's 50K-configuration grid search
// tractable.
type EvalSet struct {
	// I is the measure configuration.
	I measures.Set
	// Method is the comparison method that produced labels.
	Method offline.Method
	// N is the n-context size.
	N int

	// Samples are the labeled samples built with θ_I = -∞ (no filter);
	// per-config filtering happens at evaluation time via Best.
	Samples []*offline.Sample
	// Best[i] is sample i's maximal relative interestingness.
	Best []float64
	// Dist is the symmetric pairwise context distance matrix.
	Dist [][]float64
	// neighbors[i] lists all other sample indices sorted by Dist[i][·].
	neighbors [][]int32

	// Workers bounds the LOOCV fan-out of EvaluateKNN: <1 means one worker
	// per CPU, 1 forces the sequential path. The per-sample outcomes are
	// pure reads over the precomputed matrix written to index-addressed
	// slots, so metrics are bit-identical at every setting (DESIGN.md,
	// "Determinism under fan-out").
	Workers int
}

// BuildEvalSet extracts, labels and indexes the evaluation samples. The
// metric defaults to a memoized tree edit distance; pass a shared
// *distance.Memo-backed metric to reuse display distances across several
// EvalSets (different n values).
func BuildEvalSet(a *offline.Analysis, I measures.Set, method offline.Method, n int, metric distance.Metric) *EvalSet {
	if metric == nil {
		metric = distance.NewMemoizedTreeEdit(nil)
	}
	es := buildSamplesOnly(a, I, method, n)
	es.Dist = PairwiseDistances(es.Samples, metric)
	es.neighbors = sortNeighbors(es.Dist)
	return es
}

// buildSamplesOnly extracts and labels the samples without computing
// distances (shared by BuildEvalSet and BuildEvalSetCached).
func buildSamplesOnly(a *offline.Analysis, I measures.Set, method offline.Method, n int) *EvalSet {
	samples := offline.BuildTrainingSet(a, I, offline.TrainingOptions{
		N:              n,
		Method:         method,
		ThetaI:         math.Inf(-1),
		SuccessfulOnly: true,
	})
	es := &EvalSet{I: I, Method: method, N: n, Samples: samples}
	es.Best = make([]float64, len(samples))
	for i, s := range samples {
		es.Best[i] = s.Best
	}
	return es
}

// PairwiseDistances computes the symmetric distance matrix of the samples'
// contexts. It stays sequential because the metric is caller-supplied and
// need not be safe for concurrent use; the DistanceCache path, which owns
// its (concurrency-safe) metric, fans the fill out via
// PairwiseDistancesWorkers.
func PairwiseDistances(samples []*offline.Sample, metric distance.Metric) [][]float64 {
	return PairwiseDistancesWorkers(samples, metric, 1)
}

// PairwiseDistancesWorkers is PairwiseDistances with an explicit fan-out
// width (<1 means one worker per CPU, 1 forces the sequential path). Each
// worker owns one upper-triangle row i, writing d[i][j] and its mirror
// d[j][i] — distinct elements per (i, j) pair, so rows never contend. With
// workers != 1 the metric must be safe for concurrent use (the tree edit
// metric and its memoized wrapper both are).
func PairwiseDistancesWorkers(samples []*offline.Sample, metric distance.Metric, workers int) [][]float64 {
	d, _ := PairwiseDistancesCtx(nil, samples, metric, workers)
	return d
}

// PairwiseDistancesCtx is PairwiseDistancesWorkers with cancellation (a
// canceled ctx aborts between rows and returns the typed "eval.pairwise"
// stage error) and per-pair fault isolation: a distance computation that
// keeps faulting after retries — or panics — degrades to +Inf, i.e. "too
// far to ever be neighbors", instead of poisoning the matrix.
func PairwiseDistancesCtx(ctx context.Context, samples []*offline.Sample, metric distance.Metric, workers int) ([][]float64, error) {
	n := len(samples)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	var fps []string
	injecting := faults.Enabled()
	if injecting {
		fps = make([]string, n)
		for i, s := range samples {
			fps[i] = sampleFP(s)
		}
	}
	// The atomic-cursor dispatch of ForEach load-balances the triangular
	// row costs (row 0 holds n-1 distances, row n-1 none).
	done, err := parallel.ForEachN(ctx, n, workers, func(i int) {
		for j := i + 1; j < n; j++ {
			var v float64
			if injecting {
				v = guardedDistance(metric, samples[i].Context, samples[j].Context, fps[i]+"~"+fps[j])
			} else {
				v = metric.Distance(samples[i].Context, samples[j].Context)
			}
			d[i][j] = v
			d[j][i] = v
		}
	})
	if err != nil {
		return nil, pipeline.Wrap("eval.pairwise", done, n, err)
	}
	return d, nil
}

// guardedDistance computes one pairwise distance behind the eval.pairwise
// fault probe, degrading to +Inf when retries exhaust.
func guardedDistance(metric distance.Metric, a, b *session.Context, key string) float64 {
	var v float64
	err := faults.DefaultRetry.Do(nil, func(attempt int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = pipeline.Recovered(faults.SiteEvalPairwise, r)
			}
		}()
		if err := faults.Inject(faults.SiteEvalPairwise, faults.Key(key, attempt), faults.KindAll); err != nil {
			return err
		}
		v = metric.Distance(a, b)
		return nil
	})
	if err != nil {
		mPairDropped.Inc()
		return math.Inf(1)
	}
	return v
}

func sortNeighbors(d [][]float64) [][]int32 {
	return sortNeighborsWorkers(d, 1)
}

// sortNeighborsWorkers sorts each sample's neighbor list by distance; rows
// are independent, so they spread across the pool. The per-row stable sort
// keeps index order among equal distances, making every row — and hence
// every downstream LOOCV outcome — identical at any width.
func sortNeighborsWorkers(d [][]float64, workers int) [][]int32 {
	out, _ := sortNeighborsCtx(nil, d, workers)
	return out
}

// sortNeighborsCtx is sortNeighborsWorkers with cancellation.
func sortNeighborsCtx(ctx context.Context, d [][]float64, workers int) ([][]int32, error) {
	n := len(d)
	out := make([][]int32, n)
	done, err := parallel.ForEachN(ctx, n, workers, func(i int) {
		idx := make([]int32, 0, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				idx = append(idx, int32(j))
			}
		}
		row := d[i]
		sort.SliceStable(idx, func(a, b int) bool { return row[idx[a]] < row[idx[b]] })
		out[i] = idx
	})
	if err != nil {
		return nil, pipeline.Wrap("eval.sort_neighbors", done, n, err)
	}
	return out, nil
}

// KNNConfig is one grid-search configuration (Table 4's hyper-parameters;
// n is fixed by the EvalSet).
type KNNConfig struct {
	K          int
	ThetaDelta float64
	ThetaI     float64
}

// EvaluateKNN runs Leave-One-Out cross validation of the I-kNN model: each
// θ_I-eligible sample is predicted from all other eligible samples.
func (e *EvalSet) EvaluateKNN(cfg KNNConfig) Metrics {
	m, _ := e.EvaluateKNNCtx(nil, cfg)
	return m
}

// EvaluateKNNCtx is EvaluateKNN with cancellation: a canceled ctx stops
// the LOOCV loop between samples and returns the typed "eval.loocv"
// stage error with how many outcomes completed.
func (e *EvalSet) EvaluateKNNCtx(ctx context.Context, cfg KNNConfig) (Metrics, error) {
	outcomes, err := e.knnOutcomesCtx(ctx, cfg)
	if err != nil {
		return Metrics{}, err
	}
	return Compute(outcomes, e.I.Names()), nil
}

// minParallelLOOCV is the smallest eligible-sample count worth fanning the
// LOOCV loop out over; below it the per-sample work is dwarfed by pool
// startup (EvaluateKNN runs thousands of times inside a grid search).
const minParallelLOOCV = 128

// knnOutcomes produces the per-sample LOOCV outcomes behind EvaluateKNN.
// The eligible indices are collected sequentially (fixing outcome order),
// then each outcome — a pure read of the precomputed distance matrix and
// neighbor lists — is filled into its own slot by the pool.
func (e *EvalSet) knnOutcomes(cfg KNNConfig) []Outcome {
	out, _ := e.knnOutcomesCtx(nil, cfg)
	return out
}

func (e *EvalSet) knnOutcomesCtx(ctx context.Context, cfg KNNConfig) ([]Outcome, error) {
	eligible := e.eligibleMask(cfg.ThetaI)
	idxs := make([]int, 0, len(e.Samples))
	for i := range e.Samples {
		if eligible[i] {
			idxs = append(idxs, i)
		}
	}
	workers := e.Workers
	if parallel.Workers(workers) > 1 && len(idxs) < minParallelLOOCV {
		workers = 1
	}
	outcomes := make([]Outcome, len(idxs))
	done, err := parallel.ForEachN(ctx, len(idxs), workers, func(oi int) {
		outcomes[oi] = e.knnOutcomeGuarded(idxs[oi], eligible, cfg)
	})
	if err != nil {
		return nil, pipeline.Wrap("eval.loocv", done, len(idxs), err)
	}
	return outcomes, nil
}

// knnOutcomeGuarded wraps knnOutcome with the eval.loocv fault probe: an
// outcome whose retries exhaust — or that panics — degrades to an
// abstention for that sample (Covered false), keeping the ground-truth
// labels so coverage-sensitive metrics stay honest.
func (e *EvalSet) knnOutcomeGuarded(i int, eligible []bool, cfg KNNConfig) Outcome {
	if !faults.Enabled() {
		return e.knnOutcome(i, eligible, cfg)
	}
	var o Outcome
	err := faults.DefaultRetry.Do(nil, func(attempt int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = pipeline.Recovered(faults.SiteEvalLOOCV, r)
			}
		}()
		if err := faults.Inject(faults.SiteEvalLOOCV, faults.Key(sampleFP(e.Samples[i]), attempt), faults.KindAll); err != nil {
			return err
		}
		o = e.knnOutcome(i, eligible, cfg)
		return nil
	})
	if err != nil {
		mOutcomeDropped.Inc()
		return Outcome{Actual: e.Samples[i].Labels, Covered: false}
	}
	return o
}

// knnOutcome runs the leave-one-out prediction of one eligible sample.
func (e *EvalSet) knnOutcome(i int, eligible []bool, cfg KNNConfig) Outcome {
	var nbrs []knn.Neighbor
	for _, j := range e.neighbors[i] {
		dj := e.Dist[i][j]
		if dj > cfg.ThetaDelta {
			break // neighbors are sorted; all further ones are too far
		}
		if !eligible[j] {
			continue
		}
		nbrs = append(nbrs, knn.Neighbor{Sample: e.Samples[j], Dist: dj})
		if len(nbrs) == cfg.K {
			break
		}
	}
	pred := knn.Vote(nbrs, cfg.K)
	return Outcome{
		Predicted: pred.Label,
		Actual:    e.Samples[i].Labels,
		Covered:   pred.Covered,
	}
}

func (e *EvalSet) eligibleMask(thetaI float64) []bool {
	mask := make([]bool, len(e.Samples))
	for i, b := range e.Best {
		mask[i] = b >= thetaI
	}
	return mask
}

// EvaluateRandom scores the RANDOM baseline: a uniformly random measure
// from I for every eligible sample (full coverage).
func (e *EvalSet) EvaluateRandom(thetaI float64, seed uint64) Metrics {
	names := e.I.Names()
	if len(names) == 0 {
		// An empty measure configuration has nothing to draw from;
		// rng.Intn(0) would panic on this user-reachable path.
		return Metrics{}
	}
	rng := stats.NewRNG(seed + 0xABCD)
	eligible := e.eligibleMask(thetaI)
	var outcomes []Outcome
	for i := range e.Samples {
		if !eligible[i] {
			continue
		}
		outcomes = append(outcomes, Outcome{
			Predicted: names[rng.Intn(len(names))],
			Actual:    e.Samples[i].Labels,
			Covered:   true,
		})
	}
	return Compute(outcomes, names)
}

// EvaluateBestSM scores the Best-SM baseline: always predict the single
// most prevalent label of the (leave-one-out) training set — the a-priori
// single-measure approach of existing analysis tools.
func (e *EvalSet) EvaluateBestSM(thetaI float64) Metrics {
	eligible := e.eligibleMask(thetaI)
	counts := make(map[string]float64)
	total := 0
	for i, s := range e.Samples {
		if !eligible[i] {
			continue
		}
		total++
		w := 1 / float64(len(s.Labels))
		for _, l := range s.Labels {
			counts[l] += w
		}
	}
	_ = total
	var outcomes []Outcome
	for i, s := range e.Samples {
		if !eligible[i] {
			continue
		}
		// Leave-one-out: discount the test sample's own labels.
		best, bestV := "", math.Inf(-1)
		w := 1 / float64(len(s.Labels))
		for l, c := range counts {
			v := c
			if s.HasLabel(l) {
				v -= w
			}
			if v > bestV || (v == bestV && l < best) {
				best, bestV = l, v
			}
		}
		outcomes = append(outcomes, Outcome{Predicted: best, Actual: s.Labels, Covered: true})
	}
	return Compute(outcomes, e.I.Names())
}

// SVMOptions configures the I-SVM baseline evaluation.
type SVMOptions struct {
	// Config is the underlying SVM configuration.
	Config svm.Config
	// Folds is the cross-validation fold count. The paper uses LOOCV
	// throughout; retraining an SVM per left-out sample is quadratically
	// more expensive, so this reproduction defaults to 8-fold CV (<=0),
	// documented in EXPERIMENTS.md. Set Folds == len(samples) for true
	// LOOCV.
	Folds int
	// Seed shuffles the fold assignment.
	Seed uint64
}

// EvaluateSVM scores the I-SVM baseline: a one-vs-rest SVM over the
// distance-substitution kernel, k-fold cross-validated. It always has full
// coverage.
func (e *EvalSet) EvaluateSVM(thetaI float64, opts SVMOptions) (Metrics, error) {
	folds := opts.Folds
	if folds <= 0 {
		folds = 8
	}
	eligible := e.eligibleMask(thetaI)
	var idx []int
	for i, ok := range eligible {
		if ok {
			idx = append(idx, i)
		}
	}
	if len(idx) < 2*folds {
		folds = 2
	}
	if len(idx) < 4 {
		return Metrics{}, nil
	}
	rng := stats.NewRNG(opts.Seed + 0x5F3759DF)
	perm := rng.Perm(len(idx))
	foldOf := make([]int, len(idx))
	for pi, p := range perm {
		foldOf[p] = pi % folds
	}

	classes := e.I.Names()
	var outcomes []Outcome
	for f := 0; f < folds; f++ {
		var trainIdx, testIdx []int
		for li, gi := range idx {
			if foldOf[li] == f {
				testIdx = append(testIdx, gi)
			} else {
				trainIdx = append(trainIdx, gi)
			}
		}
		if len(trainIdx) == 0 || len(testIdx) == 0 {
			continue
		}
		sub := make([][]float64, len(trainIdx))
		y := make([]string, len(trainIdx))
		for a, ga := range trainIdx {
			sub[a] = make([]float64, len(trainIdx))
			for b, gb := range trainIdx {
				sub[a][b] = e.Dist[ga][gb]
			}
			y[a] = e.Samples[ga].Label()
		}
		model, err := svm.Train(sub, y, classes, opts.Config)
		if err != nil {
			return Metrics{}, err
		}
		for _, gt := range testIdx {
			row := make([]float64, len(trainIdx))
			for a, ga := range trainIdx {
				row[a] = e.Dist[gt][ga]
			}
			pred, _ := model.Predict(row)
			outcomes = append(outcomes, Outcome{Predicted: pred, Actual: e.Samples[gt].Labels, Covered: true})
		}
	}
	return Compute(outcomes, classes), nil
}
