package knn

import (
	"testing"

	"repro/internal/offline"
	"repro/internal/session"
)

func sample(labels ...string) *offline.Sample {
	return &offline.Sample{Labels: labels}
}

func TestVoteMajority(t *testing.T) {
	ns := []Neighbor{
		{Sample: sample("variance"), Dist: 0.1},
		{Sample: sample("variance"), Dist: 0.2},
		{Sample: sample("osf"), Dist: 0.05},
	}
	p := Vote(ns, 3)
	if !p.Covered || p.Label != "variance" {
		t.Errorf("prediction = %+v, want variance", p)
	}
	if p.Votes["variance"] != 2 || p.Votes["osf"] != 1 {
		t.Errorf("votes = %v", p.Votes)
	}
}

func TestVoteRespectsK(t *testing.T) {
	ns := []Neighbor{
		{Sample: sample("osf"), Dist: 0.01},
		{Sample: sample("variance"), Dist: 0.2},
		{Sample: sample("variance"), Dist: 0.3},
	}
	// k=1: only the nearest votes.
	p := Vote(ns, 1)
	if p.Label != "osf" {
		t.Errorf("k=1 label = %s, want osf", p.Label)
	}
	// k=3: majority flips.
	p = Vote(ns, 3)
	if p.Label != "variance" {
		t.Errorf("k=3 label = %s, want variance", p.Label)
	}
}

func TestVoteAbstainsOnEmpty(t *testing.T) {
	p := Vote(nil, 5)
	if p.Covered || p.Label != "" {
		t.Errorf("empty neighbors must abstain: %+v", p)
	}
	// Neighbors with no labels also abstain.
	p = Vote([]Neighbor{{Sample: sample(), Dist: 0.1}}, 1)
	if p.Covered {
		t.Error("label-less neighbors must abstain")
	}
}

func TestVoteTieBrokenByCloseness(t *testing.T) {
	ns := []Neighbor{
		{Sample: sample("osf"), Dist: 0.01},
		{Sample: sample("variance"), Dist: 0.4},
	}
	p := Vote(ns, 2)
	if p.Label != "osf" {
		t.Errorf("tie should go to the closer neighbor's label, got %s", p.Label)
	}
}

func TestVoteTieWeighting(t *testing.T) {
	// A neighbor with two tied labels contributes half a vote to each.
	ns := []Neighbor{
		{Sample: sample("variance", "osf"), Dist: 0.1},
		{Sample: sample("schutz"), Dist: 0.1},
	}
	p := Vote(ns, 2)
	if p.Votes["variance"] != 0.5 || p.Votes["schutz"] != 1 {
		t.Errorf("votes = %v", p.Votes)
	}
	if p.Label != "schutz" {
		t.Errorf("label = %s, want schutz (full vote beats half votes)", p.Label)
	}
}

func TestVoteDeterministicLexicalTieBreak(t *testing.T) {
	ns := []Neighbor{
		{Sample: sample("b_measure"), Dist: 0.2},
		{Sample: sample("a_measure"), Dist: 0.2},
	}
	for i := 0; i < 5; i++ {
		p := Vote(append([]Neighbor(nil), ns...), 2)
		if p.Label != "a_measure" {
			t.Fatalf("fully tied vote should break lexically, got %s", p.Label)
		}
	}
}

// stubMetric measures distance as |len(labels of a) - steps| — it only
// needs to be deterministic for the classifier test.
type stubMetric struct{}

func (stubMetric) Name() string { return "stub" }
func (stubMetric) Distance(a, b *session.Context) float64 {
	if a == b {
		return 0
	}
	da := a.T - b.T
	if da < 0 {
		da = -da
	}
	return float64(da) / 10
}

func TestClassifierThresholdAndAbstention(t *testing.T) {
	samples := []*offline.Sample{
		{Context: &session.Context{T: 1}, Labels: []string{"variance"}},
		{Context: &session.Context{T: 2}, Labels: []string{"variance"}},
		{Context: &session.Context{T: 9}, Labels: []string{"osf"}},
	}
	clf := New(samples, stubMetric{}, Config{K: 2, ThetaDelta: 0.15})
	// Query near T=1/2: both variance samples within 0.15.
	p := clf.Predict(&session.Context{T: 1})
	if !p.Covered || p.Label != "variance" {
		t.Errorf("prediction = %+v", p)
	}
	// Query at T=5: nothing within 0.15 -> abstain.
	p = clf.Predict(&session.Context{T: 5})
	if p.Covered {
		t.Errorf("expected abstention, got %+v", p)
	}
	// Unbounded: must always cover.
	clfU := New(samples, stubMetric{}, Config{K: 1, Unbounded: true})
	p = clfU.Predict(&session.Context{T: 5})
	if !p.Covered {
		t.Error("unbounded classifier must not abstain")
	}
	if len(clf.Samples()) != 3 {
		t.Error("Samples accessor wrong")
	}
}

func TestClassifierDefaultMetricAndK(t *testing.T) {
	// nil metric defaults to tree edit; k<1 coerced to 1; must not panic
	// on empty contexts.
	clf := New([]*offline.Sample{{Context: &session.Context{}, Labels: []string{"x"}}}, nil, Config{K: 0, Unbounded: true})
	p := clf.Predict(&session.Context{})
	if !p.Covered || p.Label != "x" {
		t.Errorf("prediction = %+v", p)
	}
}
