package stats

import (
	"fmt"
	"math"

	"repro/internal/obs"
)

// Telemetry handles for the λ search: fits counts BoxCoxLambdaMLE calls,
// lambda_evals the profile-log-likelihood evaluations they performed
// (grid scan + golden-section iterations).
var (
	mBoxCoxFits  = obs.C("stats.boxcox.fits")
	mLambdaEvals = obs.C("stats.boxcox.lambda_evals")
)

// BoxCox applies the Box-Cox power transformation with parameter lambda
// to a single strictly positive observation:
//
//	y(λ) = (x^λ - 1) / λ   for λ != 0
//	y(0) = ln(x)
func BoxCox(x, lambda float64) float64 {
	if lambda == 0 {
		return math.Log(x)
	}
	return (math.Pow(x, lambda) - 1) / lambda
}

// BoxCoxSlice transforms every element of xs with the given lambda.
// All elements must be strictly positive (see ShiftPositive).
func BoxCoxSlice(xs []float64, lambda float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = BoxCox(x, lambda)
	}
	return out
}

// ShiftPositive returns xs+shift where shift is the smallest constant that
// makes every element strictly positive (at least eps above zero). If all
// elements are already >= eps the data is returned unshifted (shift = 0).
// This mirrors the paper's preprocessing: "each series ... was first
// shifted by a constant in order to eliminate negative scores".
func ShiftPositive(xs []float64, eps float64) (shifted []float64, shift float64) {
	if len(xs) == 0 {
		return nil, 0
	}
	if eps <= 0 {
		eps = 1e-9
	}
	m := Min(xs)
	if m >= eps {
		return append([]float64(nil), xs...), 0
	}
	shift = eps - m
	shifted = make([]float64, len(xs))
	for i, x := range xs {
		shifted[i] = x + shift
	}
	return shifted, shift
}

// boxCoxLogLikelihood is the profile log-likelihood of the Box-Cox
// transformation at lambda (up to constants):
//
//	llf(λ) = -(n/2)·ln(σ²(y(λ))) + (λ-1)·Σ ln(x)
//
// where σ² is the biased variance of the transformed data.
func boxCoxLogLikelihood(xs []float64, lambda, sumLog float64) float64 {
	n := float64(len(xs))
	y := BoxCoxSlice(xs, lambda)
	v := PopulationVariance(y)
	if v <= 0 {
		return math.Inf(-1)
	}
	return -n/2*math.Log(v) + (lambda-1)*sumLog
}

// BoxCoxLambdaMLE estimates the Box-Cox power parameter λ by maximizing the
// profile log-likelihood over [lo, hi] (the conventional search window is
// [-5, 5]). It uses golden-section search seeded by a coarse grid scan so
// that a locally flat likelihood cannot trap the optimizer far from the
// global maximum. All observations must be strictly positive.
func BoxCoxLambdaMLE(xs []float64, lo, hi float64) (float64, error) {
	if len(xs) < 3 {
		return 0, fmt.Errorf("stats: box-cox MLE needs at least 3 observations, got %d", len(xs))
	}
	if lo >= hi {
		return 0, fmt.Errorf("stats: box-cox MLE invalid window [%g, %g]", lo, hi)
	}
	sumLog := 0.0
	for _, x := range xs {
		if x <= 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return 0, fmt.Errorf("stats: box-cox MLE requires strictly positive finite data, got %g", x)
		}
		sumLog += math.Log(x)
	}
	// If the data is (numerically) constant every λ is equivalent; the
	// identity transform is the natural choice.
	if PopulationVariance(xs) < 1e-18 {
		return 1, nil
	}
	mBoxCoxFits.Inc()
	ll := func(lambda float64) float64 {
		mLambdaEvals.Inc()
		return boxCoxLogLikelihood(xs, lambda, sumLog)
	}

	// Coarse grid to find a bracketing interval around the best λ.
	const gridN = 41
	bestI, bestV := 0, math.Inf(-1)
	for i := 0; i < gridN; i++ {
		lam := lo + (hi-lo)*float64(i)/float64(gridN-1)
		if v := ll(lam); v > bestV {
			bestV, bestI = v, i
		}
	}
	step := (hi - lo) / float64(gridN-1)
	a := lo + step*float64(bestI-1)
	b := lo + step*float64(bestI+1)
	if a < lo {
		a = lo
	}
	if b > hi {
		b = hi
	}

	// Golden-section search (maximization) on [a, b].
	const invPhi = 0.6180339887498949
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := ll(x1), ll(x2)
	for it := 0; it < 80 && b-a > 1e-7; it++ {
		if f1 < f2 {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = ll(x2)
		} else {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = ll(x1)
		}
	}
	return (a + b) / 2, nil
}

// BoxCoxTransform is the full pipeline used by the Normalized comparison
// method (Algorithm 2, stage 1): shift the series positive, estimate λ by
// MLE and transform. It returns the transformed series together with the
// fitted parameters so that new observations can be transformed
// consistently via Params.Apply.
func BoxCoxTransform(xs []float64) ([]float64, BoxCoxParams, error) {
	shifted, shift := ShiftPositive(xs, 1e-6)
	if len(shifted) == 0 {
		return nil, BoxCoxParams{Lambda: 1}, ErrEmpty
	}
	lambda, err := BoxCoxLambdaMLE(shifted, -5, 5)
	if err != nil {
		return nil, BoxCoxParams{}, err
	}
	p := BoxCoxParams{Lambda: lambda, Shift: shift}
	return BoxCoxSlice(shifted, lambda), p, nil
}

// BoxCoxParams captures a fitted Box-Cox transformation so it can be applied
// to out-of-sample observations.
type BoxCoxParams struct {
	// Lambda is the fitted power parameter.
	Lambda float64
	// Shift is the constant added to make the training series positive.
	Shift float64
}

// Apply transforms one new observation with the fitted parameters. Values
// that remain non-positive after the shift are clamped to a small epsilon,
// which corresponds to "at least as extreme as the most extreme training
// observation" semantics.
func (p BoxCoxParams) Apply(x float64) float64 {
	v := x + p.Shift
	if v < 1e-9 {
		v = 1e-9
	}
	return BoxCox(v, p.Lambda)
}
