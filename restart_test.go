package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/faults"
	"repro/internal/snapshot"
)

// Restart-survivability acceptance (DESIGN.md §9): a training run killed
// at an arbitrary point and resumed from its checkpoint must produce a
// byte-identical model snapshot, and a server that hot-reloads a
// snapshot must serve predictions identical to the in-process model.
// Run under -race alongside the chaos suite:
//
//	go test -race -run 'KillResume|Reload' .

// trainSnapshotBytes runs analysis + training end to end under opts and
// returns the serialized model snapshot.
func trainSnapshotBytes(ctx context.Context, t *testing.T, fw *Framework, opts AnalysisOptions, method Method, cfg PredictorConfig) ([]byte, error) {
	t.Helper()
	f := NewFramework(fw.Repo)
	if err := f.RunOfflineAnalysisContext(ctx, opts); err != nil {
		return nil, err
	}
	p, err := f.TrainPredictorContext(ctx, DefaultMeasureSet(), method, cfg)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := p.WriteSnapshot(&buf); err != nil {
		t.Fatalf("snapshot write: %v", err)
	}
	return buf.Bytes(), nil
}

// TestChaosKillResumeCompare is the kill-resume-compare acceptance: the
// analysis + training pipeline is repeatedly killed by a context
// deadline at unpredictable points, resumed from its checkpoint
// directory, and — once it finally completes — its snapshot must be
// byte-identical to an uninterrupted run's. Error and panic faults stay
// armed throughout (content-keyed injection degrades both runs
// identically); checkpoint-write faults degrade to a skipped flush, so
// they only move the resume point, never the output.
func TestChaosKillResumeCompare(t *testing.T) {
	fw := chaosFramework(t)
	armFaults(t, faults.Config{Prob: 0.05, Seed: 11, Kinds: faults.KindError | faults.KindPanic})

	method := ReferenceBased // exercises the checkpointed reference pass
	opts := AnalysisOptions{RefLimit: 10, MinRefs: 2, CheckpointEvery: 4}
	cfg := DefaultPredictorConfig(method)

	baseline, err := trainSnapshotBytes(context.Background(), t, fw, opts, method, cfg)
	if err != nil {
		t.Fatalf("uninterrupted run failed: %v", err)
	}

	ckptOpts := opts
	ckptOpts.CheckpointDir = t.TempDir()
	ckptOpts.Resume = true
	interrupted := 0
	deadline := time.Millisecond
	for attempt := 0; ; attempt++ {
		if attempt > 60 {
			t.Fatalf("pipeline never completed after %d interrupted attempts", interrupted)
		}
		ctx, cancel := context.WithTimeout(context.Background(), deadline)
		snap, err := trainSnapshotBytes(ctx, t, fw, ckptOpts, method, cfg)
		timedOut := ctx.Err() != nil
		cancel()
		if err == nil {
			if !bytes.Equal(snap, baseline) {
				t.Fatalf("resumed snapshot differs from uninterrupted baseline (%d vs %d bytes) after %d kills",
					len(snap), len(baseline), interrupted)
			}
			if interrupted == 0 {
				t.Fatal("pipeline completed within 1ms; the kill sweep never interrupted anything")
			}
			t.Logf("byte-identical snapshot (%d bytes) after %d mid-run kills", len(snap), interrupted)
			return
		}
		if !timedOut {
			t.Fatalf("attempt %d failed for a non-deadline reason: %v", attempt, err)
		}
		interrupted++
		// Grow the deadline slowly so several attempts die mid-stage at
		// different points before one finally finishes.
		deadline = deadline * 3 / 2
	}
}

// TestReloadServesIdenticalPredictions is the hot-reload acceptance: a
// server wired with a SnapshotReloader swaps in generation 2 on
// /v1/admin/reload, and the predictions it then serves over HTTP (via
// the resilient client) are identical to the in-process model's
// PredictAll answers.
func TestReloadServesIdenticalPredictions(t *testing.T) {
	fw := chaosFramework(t)
	if err := fw.RunOfflineAnalysis(AnalysisOptions{RefLimit: 10, MinRefs: 2, SkipReference: true}); err != nil {
		t.Fatal(err)
	}
	pred, err := fw.TrainPredictor(DefaultMeasureSet(), Normalized, PredictorConfig{
		N: 2, K: 5, ThetaDelta: 0.5, ThetaI: -10, Fallback: FallbackPrior,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.snap")
	if err := pred.Save(path); err != nil {
		t.Fatal(err)
	}

	srv := pred.NewServer(ServeOptions{Reloader: SnapshotReloader(path)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var st ServeModelStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || st.Generation != 2 {
		t.Fatalf("reload: status %d generation %d, want 200 generation 2", resp.StatusCode, st.Generation)
	}
	if got := srv.Status(); got.Generation != 2 || got.TrainingSize != pred.TrainingSize() {
		t.Fatalf("post-reload status = %+v", got)
	}

	qs := testContexts(t, fw, 2, 24)
	want := pred.PredictAll(qs)
	cl, err := client.New(client.Options{BaseURL: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	wire := make([]*snapshot.WireContext, len(qs))
	for i, q := range qs {
		wire[i] = EncodeWireContext(q)
	}
	got, err := cl.PredictBatch(context.Background(), wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("batch returned %d predictions for %d queries", len(got), len(want))
	}
	for i := range want {
		if got[i].Measure != want[i].MeasureName || got[i].OK != want[i].OK || got[i].Fallback != want[i].Fallback || got[i].Degraded {
			t.Fatalf("query %d: reloaded server %+v != in-process %+v", i, got[i], want[i])
		}
	}
}
