// Package ring implements the consistent-hash placement layer of the
// replicated sharded serving tier (DESIGN.md §11): the trained model's
// labeled n-contexts are partitioned into a fixed number of shards, and
// each shard is placed on an R-way replica group of serve instances
// chosen deterministically by walking a consistent-hash circle of
// virtual nodes.
//
// Two placement functions matter and they are deliberately different:
//
//   - Sample → shard is a plain hash mod Shards. The shard count is part
//     of the model's serving topology (changing it re-partitions the
//     training set), so there is nothing to gain from consistency here —
//     what matters is that every process derives the identical partition
//     from the identical spec, bit for bit.
//
//   - Shard → nodes walks the consistent-hash circle. Nodes join and
//     leave as machines come and go; virtual nodes keep the walk's
//     placement balanced, and consistency keeps a node change from
//     reshuffling every shard's replica group at once.
//
// Because the session tree-edit distance is a metric without coordinates,
// hash partitioning has no spatial locality: a query's θ_δ-radius can —
// and in general does — span every shard, so the router scatters each
// query to all shards and merges the per-shard kNN candidate sets (the
// merge is exact: any global top-k neighbor is in its own shard's local
// top-k). The ring's job is therefore availability placement, not search
// pruning; see internal/serve's router for the fan-out itself.
//
// Everything here is a pure function of the Spec: no clocks, no
// randomness, no I/O after LoadSpec. Two processes loading the same
// ring.json agree on every placement decision without coordination.
package ring

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
)

// Node is one serve instance in the ring.
type Node struct {
	// Name is the node's stable identity (placement hashes it, health
	// state and metrics key on it). Must be unique within the spec.
	Name string `json:"name"`
	// Addr is the node's base URL, e.g. "http://10.0.0.3:8081".
	Addr string `json:"addr"`
}

// Spec is the serialized ring topology (ring.json): every process in the
// tier — replicas and routers alike — loads the same spec and derives the
// same placement from it.
type Spec struct {
	// Shards is the number of training-context partitions. Changing it
	// re-partitions the model, so it is fixed for a topology's lifetime.
	Shards int `json:"shards"`
	// Replicas is the replica-group size R: every shard is served by R
	// distinct nodes (capped at len(Nodes)).
	Replicas int `json:"replicas"`
	// VNodes is the number of virtual nodes per physical node on the
	// hash circle; more virtual nodes smooth placement. <1 means 64.
	VNodes int `json:"vnodes,omitempty"`
	// Nodes are the member serve instances.
	Nodes []Node `json:"nodes"`
}

// Validate checks the spec for structural problems: missing counts,
// duplicate or empty node names, a replica factor no node set can honor.
func (s *Spec) Validate() error {
	if s.Shards < 1 {
		return errors.New("ring: spec needs shards >= 1")
	}
	if s.Replicas < 1 {
		return errors.New("ring: spec needs replicas >= 1")
	}
	if len(s.Nodes) == 0 {
		return errors.New("ring: spec has no nodes")
	}
	if s.Replicas > len(s.Nodes) {
		return fmt.Errorf("ring: %d replicas requested but only %d nodes", s.Replicas, len(s.Nodes))
	}
	seen := make(map[string]bool, len(s.Nodes))
	for i, n := range s.Nodes {
		if n.Name == "" {
			return fmt.Errorf("ring: node %d has no name", i)
		}
		if n.Addr == "" {
			return fmt.Errorf("ring: node %q has no addr", n.Name)
		}
		if seen[n.Name] {
			return fmt.Errorf("ring: duplicate node name %q", n.Name)
		}
		seen[n.Name] = true
	}
	return nil
}

// LoadSpec reads and validates a ring.json.
func LoadSpec(path string) (*Spec, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ring: %w", err)
	}
	var s Spec
	if err := json.Unmarshal(blob, &s); err != nil {
		return nil, fmt.Errorf("ring: parse %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("ring: %s: %w", path, err)
	}
	return &s, nil
}

// point is one virtual node on the hash circle.
type point struct {
	hash uint64
	node int // index into Ring.nodes
}

// Ring is the resolved placement: the sorted virtual-node circle plus
// the per-shard replica groups, computed once at construction.
type Ring struct {
	spec   Spec
	points []point
	// groups[s] is shard s's replica group, preference-ordered by the
	// circle walk (the first entry is the shard's primary).
	groups [][]Node
}

// New resolves a validated spec into a ring.
func New(spec *Spec) (*Ring, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	s := *spec
	s.Nodes = append([]Node(nil), spec.Nodes...)
	vn := s.VNodes
	if vn < 1 {
		vn = 64
	}
	r := &Ring{spec: s}
	r.points = make([]point, 0, len(s.Nodes)*vn)
	for ni, n := range s.Nodes {
		for v := 0; v < vn; v++ {
			r.points = append(r.points, point{hash: hash64("node:" + n.Name + "#" + strconv.Itoa(v)), node: ni})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A full-64-bit hash collision is vanishingly unlikely, but the
		// sort must still be total and spec-deterministic.
		return r.points[i].node < r.points[j].node
	})
	r.groups = make([][]Node, s.Shards)
	for sh := 0; sh < s.Shards; sh++ {
		r.groups[sh] = r.walk(hash64("shard:"+strconv.Itoa(sh)), s.Replicas)
	}
	return r, nil
}

// walk collects the first want distinct nodes clockwise from h.
func (r *Ring) walk(h uint64, want int) []Node {
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	group := make([]Node, 0, want)
	seen := make(map[int]bool, want)
	for i := 0; i < len(r.points) && len(group) < want; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		group = append(group, r.spec.Nodes[p.node])
	}
	return group
}

// Spec returns a copy of the resolved spec.
func (r *Ring) Spec() Spec {
	s := r.spec
	s.Nodes = append([]Node(nil), r.spec.Nodes...)
	return s
}

// Shards returns the shard count.
func (r *Ring) Shards() int { return r.spec.Shards }

// Nodes returns the member nodes in spec order.
func (r *Ring) Nodes() []Node { return append([]Node(nil), r.spec.Nodes...) }

// ReplicaGroup returns shard's replica group in circle-walk preference
// order (the first node is the primary). The returned slice is shared;
// callers must not mutate it.
func (r *Ring) ReplicaGroup(shard int) []Node {
	if shard < 0 || shard >= len(r.groups) {
		return nil
	}
	return r.groups[shard]
}

// SampleKey is the canonical placement key of a training context: the
// same "<session>@<t>/<n>" identity the fault injector and the serving
// layer key on, so every subsystem names a context the same way.
func SampleKey(sessionID string, t, n int) string {
	return sessionID + "@" + strconv.Itoa(t) + "/" + strconv.Itoa(n)
}

// ShardOf maps a placement key to its owning shard: a pure hash mod
// Shards, identical in every process that loaded this spec.
func (r *Ring) ShardOf(key string) int {
	return int(hash64("sample:"+key) % uint64(r.spec.Shards))
}

// NodeShards lists the shards whose replica groups include the named
// node, ascending — the partitions a replica process must load and serve.
func (r *Ring) NodeShards(name string) []int {
	var out []int
	for sh, group := range r.groups {
		for _, n := range group {
			if n.Name == name {
				out = append(out, sh)
				break
			}
		}
	}
	return out
}

// Node resolves a node by name.
func (r *Ring) Node(name string) (Node, bool) {
	for _, n := range r.spec.Nodes {
		if n.Name == name {
			return n, true
		}
	}
	return Node{}, false
}

// hash64 is FNV-1a finished with a murmur3 fmix64 avalanche — the same
// construction internal/faults uses for its deterministic probe
// decisions: cheap, dependency-free, and uniform enough in the high bits
// for both the circle positions and the mod-Shards split.
func hash64(key string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * prime
	}
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	h *= 0xC4CEB9FE1A85EC53
	h ^= h >> 33
	return h
}
