// Package knn implements the paper's I-kNN predictive model (Section 3.2):
// given a session state's n-context, retrieve its k nearest labeled
// n-contexts under the session distance metric, reject neighbors farther
// than the distance threshold θ_δ, and majority-vote a dominant
// interestingness measure. When no sufficiently similar neighbors exist
// the model abstains, which is what produces the coverage-rate < 1
// reported throughout Section 4.2.
package knn

import (
	"fmt"
	"sort"

	"repro/internal/distance"
	"repro/internal/obs"
	"repro/internal/offline"
	"repro/internal/session"
)

// Telemetry handles shared by all classifiers; the per-θ_δ outcome
// counters live on the Classifier (see New) so the abstention/coverage
// split is reported per configured threshold.
var (
	mScans     = obs.C("knn.scans")
	mDistEvals = obs.C("knn.distance_evals")
	stPredict  = obs.S("predict")
)

// Neighbor pairs a training sample with its distance from a query context.
type Neighbor struct {
	Sample *offline.Sample
	Dist   float64
}

// Prediction is the model's output for one query.
type Prediction struct {
	// Label is the predicted measure name; empty when the model abstains.
	Label string
	// Votes maps candidate labels to their (tie-weighted) vote mass.
	Votes map[string]float64
	// Neighbors are the voting neighbors, nearest first.
	Neighbors []Neighbor
	// Covered is false when the model abstained (no close-enough
	// neighbors).
	Covered bool
}

// Config holds the model hyper-parameters of the paper's Table 4.
type Config struct {
	// K is the number of nearest neighbors consulted.
	K int
	// ThetaDelta (θ_δ) is the maximal allowed neighbor distance; 0
	// disables the threshold only if Unbounded is set.
	ThetaDelta float64
	// Unbounded ignores ThetaDelta entirely (used to force full
	// coverage, like the skyline's rightmost configurations).
	Unbounded bool
}

// Classifier is an instance-based (lazy) classifier over labeled
// n-contexts.
type Classifier struct {
	cfg     Config
	metric  distance.Metric
	samples []*offline.Sample

	// Per-θ_δ outcome counters, resolved once at construction so Predict
	// never formats metric names on the hot path.
	mCovered *obs.Counter
	mAbstain *obs.Counter
}

// New builds a classifier from a labeled training set. A nil metric
// defaults to the tree edit distance.
func New(samples []*offline.Sample, metric distance.Metric, cfg Config) *Classifier {
	if metric == nil {
		metric = distance.TreeEdit{}
	}
	if cfg.K < 1 {
		cfg.K = 1
	}
	theta := fmt.Sprintf("[theta_delta=%g]", cfg.ThetaDelta)
	if cfg.Unbounded {
		theta = "[unbounded]"
	}
	return &Classifier{
		cfg:      cfg,
		metric:   metric,
		samples:  samples,
		mCovered: obs.C("knn.predict.covered" + theta),
		mAbstain: obs.C("knn.predict.abstain" + theta),
	}
}

// Samples returns the training set.
func (c *Classifier) Samples() []*offline.Sample { return c.samples }

// Predict classifies a query n-context.
func (c *Classifier) Predict(query *session.Context) Prediction {
	sp := stPredict.Start()
	defer sp.End()
	if obs.On() {
		mScans.Inc()
		mDistEvals.Add(uint64(len(c.samples)))
	}
	ns := make([]Neighbor, 0, len(c.samples))
	for _, s := range c.samples {
		d := c.metric.Distance(query, s.Context)
		if !c.cfg.Unbounded && d > c.cfg.ThetaDelta {
			continue
		}
		ns = append(ns, Neighbor{Sample: s, Dist: d})
	}
	p := Vote(ns, c.cfg.K)
	if obs.On() {
		if p.Covered {
			c.mCovered.Inc()
		} else {
			c.mAbstain.Inc()
		}
	}
	return p
}

// Vote implements the majority vote over an eligible (threshold-filtered)
// neighbor list: it keeps the k nearest, accumulates tie-weighted votes
// per label, and returns the winner (ties broken by total closeness, then
// lexicographically for determinism). An empty neighbor list abstains.
func Vote(eligible []Neighbor, k int) Prediction {
	if len(eligible) == 0 {
		return Prediction{Covered: false}
	}
	sort.SliceStable(eligible, func(i, j int) bool { return eligible[i].Dist < eligible[j].Dist })
	if k < 1 {
		k = 1
	}
	if len(eligible) > k {
		eligible = eligible[:k]
	}
	votes := make(map[string]float64, 4)
	closeness := make(map[string]float64, 4)
	for _, n := range eligible {
		labels := n.Sample.Labels
		if len(labels) == 0 {
			continue
		}
		w := 1 / float64(len(labels))
		for _, l := range labels {
			votes[l] += w
			closeness[l] += (1 - n.Dist) * w
		}
	}
	if len(votes) == 0 {
		return Prediction{Covered: false, Neighbors: eligible}
	}
	best := ""
	for l := range votes {
		if best == "" {
			best = l
			continue
		}
		switch {
		case votes[l] > votes[best]:
			best = l
		case votes[l] == votes[best]:
			if closeness[l] > closeness[best] || (closeness[l] == closeness[best] && l < best) {
				best = l
			}
		}
	}
	return Prediction{Label: best, Votes: votes, Neighbors: eligible, Covered: true}
}
