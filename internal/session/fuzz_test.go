package session

import (
	"strings"
	"testing"
)

// FuzzReadLog feeds arbitrary bytes to the JSON log reader and, when the
// envelope decodes, pushes every recorded action through DecodeAction.
// Neither step may panic: a corrupted sessions.json must surface as an
// error (or a skipped action), never a crash of the loading pipeline.
//
// Run the full fuzzer with:
//
//	go test -fuzz=FuzzReadLog -fuzztime=10s ./internal/session
func FuzzReadLog(f *testing.F) {
	seeds := []string{
		`{"version":1,"sessions":[]}`,
		`{"version":1,"sessions":[{"id":"s1","analyst":"a1","dataset":"pkts","successful":true,"steps":[{"parent":0,"action":{"type":"filter","predicates":[{"column":"proto","op":"eq","kind":"string","value":"HTTP"}]}}]}]}`,
		`{"version":1,"sessions":[{"id":"s2","steps":[{"parent":0,"action":{"type":"group","group_by":"proto","agg":"count"}}]}]}`,
		`{"version":1,"sessions":[{"id":"s3","steps":[{"parent":0,"action":{"type":"top-k","sort_column":"len","k":5}}]}]}`,
		`{"version":99,"sessions":[{"steps":[{"parent":-7,"action":{"type":"nonsense"}}]}]}`,
		`{`,
		`null`,
		`[]`,
		`{"sessions":[{"steps":[{"action":{"type":"filter","predicates":[{"kind":"float","value":"not-a-number"}]}}]}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		lf, err := ReadLog(strings.NewReader(string(data)))
		if err != nil {
			return
		}
		for _, ls := range lf.Session {
			for _, step := range ls.Steps {
				a, err := DecodeAction(step.Action)
				if err != nil {
					continue
				}
				// A decoded action must re-encode and decode to the same
				// log form: Encode/Decode cannot drift.
				again, err := DecodeAction(EncodeAction(a))
				if err != nil {
					t.Fatalf("re-decode of accepted action %+v failed: %v", step.Action, err)
				}
				if again.Type != a.Type {
					t.Fatalf("action type changed across round trip: %v -> %v", a.Type, again.Type)
				}
			}
		}
	})
}

// FuzzDecodeAction drives DecodeAction directly over the full field
// product (type x op x kind x value x agg), bypassing JSON: every
// combination must either decode cleanly or return an error.
func FuzzDecodeAction(f *testing.F) {
	f.Add("filter", "proto", "eq", "string", "HTTP", "", "", 0)
	f.Add("filter", "len", "gt", "int", "100", "", "", 0)
	f.Add("filter", "ts", "le", "time", "2018-03-01T09:00:00Z", "", "", 0)
	f.Add("group", "", "", "", "", "proto", "count", 0)
	f.Add("group", "", "", "", "", "len", "avg", 0)
	f.Add("top-k", "", "", "", "", "", "", 5)
	f.Add("", "", "", "", "", "", "", -1)
	f.Add("filter", "", "nope", "float", "NaN", "", "", 0)
	f.Fuzz(func(t *testing.T, typ, col, op, kind, value, groupBy, agg string, k int) {
		la := LogAction{
			Type:       typ,
			GroupBy:    groupBy,
			Agg:        agg,
			AggColumn:  col,
			SortColumn: col,
			K:          k,
		}
		if op != "" || kind != "" || value != "" || col != "" {
			la.Predicates = []LogPredicate{{Column: col, Op: op, Kind: kind, Value: value}}
		}
		a, err := DecodeAction(la)
		if err != nil {
			return
		}
		if _, err := DecodeAction(EncodeAction(a)); err != nil {
			t.Fatalf("re-decode of accepted action %+v failed: %v", la, err)
		}
	})
}
