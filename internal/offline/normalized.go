package offline

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/faults"
	"repro/internal/measures"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/pipeline"
	"repro/internal/stats"
)

// mNormFits counts per-measure normalizer fits; each fit's duration lands
// in the per-measure "offline.normalize.fit[<measure>]" histogram (fits
// are once-per-analysis, so the clock reads are not hot-path).
// mNormZOnly counts fits that took the z-score-only degradation rung
// (identity transform instead of a fitted Box-Cox λ) because the series
// was degenerate — constant, non-finite, un-fittable — or a fault was
// injected at the fit site.
var (
	mNormFits  = obs.C("offline.normalize.fits")
	mNormZOnly = obs.C("offline.normalize.zscore_fallbacks")
)

// MeasureNorm holds the fitted Algorithm-2 parameters of one measure:
// the Box-Cox transformation (λ and the positivity shift) and the mean and
// standard deviation of the transformed training scores.
type MeasureNorm struct {
	BoxCox stats.BoxCoxParams
	Mean   float64
	Std    float64
}

// Relative standardizes one raw score: Box-Cox transform, then z-score.
func (mn MeasureNorm) Relative(raw float64) float64 {
	return stats.ZScore(mn.BoxCox.Apply(raw), mn.Mean, mn.Std)
}

// Normalizer is the preprocessing product of Algorithm 2 (the PreProcess
// function, lines 1-8): per-measure Box-Cox parameters and moments, fitted
// on the score distribution of the whole session log.
type Normalizer struct {
	// Params maps measure name -> fitted normalization.
	Params map[string]MeasureNorm
	// FitDuration records how long the preprocessing took (part of the
	// Normalized method's "calc relative scores" budget in Table 3).
	FitDuration time.Duration
}

// FitNormalizer runs the preprocessing over the raw scores of all recorded
// actions. Each measure's score series is shifted positive, Box-Cox
// transformed with an MLE-estimated λ, and its transformed mean/std stored.
func FitNormalizer(msrs []measures.Measure, nodes []*NodeScores) (*Normalizer, error) {
	return FitNormalizerWorkers(msrs, nodes, 0)
}

// FitNormalizerWorkers is FitNormalizer with an explicit fan-out width:
// the per-measure Box-Cox MLE fits are independent, so they spread across
// the worker pool (1 forces the sequential path). Fitted parameters are a
// pure function of each measure's own series, so results are bit-identical
// at every width.
func FitNormalizerWorkers(msrs []measures.Measure, nodes []*NodeScores, workers int) (*Normalizer, error) {
	return FitNormalizerCtx(nil, msrs, nodes, workers)
}

// FitNormalizerCtx is FitNormalizerWorkers with cancellation: a canceled
// ctx stops the fan-out between measure fits and returns a typed
// pipeline error for the "offline.normalize" stage.
func FitNormalizerCtx(ctx context.Context, msrs []measures.Measure, nodes []*NodeScores, workers int) (*Normalizer, error) {
	t0 := time.Now()
	n := &Normalizer{Params: make(map[string]MeasureNorm, len(msrs))}
	fits := make([]MeasureNorm, len(msrs))
	errs := make([]error, len(msrs))
	done, ferr := parallel.ForEachN(ctx, len(msrs), workers, func(i int) {
		m := msrs[i]
		series := make([]float64, 0, len(nodes))
		for _, ns := range nodes {
			if v, ok := ns.Raw[m.Name()]; ok {
				series = append(series, v)
			}
		}
		tFit := time.Now()
		fits[i], errs[i] = fitOneGuarded(ctx, m.Name(), series)
		if obs.On() {
			mNormFits.Inc()
			obs.H("offline.normalize.fit[" + m.Name() + "]").ObserveSince(tFit)
		}
	})
	if ferr != nil {
		return nil, pipeline.Wrap("offline.normalize", done, len(msrs), ferr)
	}
	for i, m := range msrs {
		if errs[i] != nil {
			return nil, fmt.Errorf("offline: normalize %s: %w", m.Name(), errs[i])
		}
		n.Params[m.Name()] = fits[i]
	}
	n.FitDuration = time.Since(t0)
	return n, nil
}

// fitOneGuarded wraps fitOne with the normalize.fit fault probe: an
// injected error or panic at this site retries, and on exhaustion the fit
// degrades to the z-score-only rung instead of failing the analysis.
func fitOneGuarded(ctx context.Context, name string, series []float64) (MeasureNorm, error) {
	if !faults.Enabled() {
		return fitOne(series)
	}
	var mn MeasureNorm
	var fitErr error
	err := faults.DefaultRetry.Do(ctx, func(attempt int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = pipeline.Recovered(faults.SiteNormalizeFit, r)
			}
		}()
		if err := faults.Inject(faults.SiteNormalizeFit, faults.Key(name, attempt), faults.KindAll); err != nil {
			return err
		}
		mn, fitErr = fitOne(series)
		return nil
	})
	if err != nil {
		if pipeline.Canceled(err) {
			return MeasureNorm{}, err
		}
		// Retries exhausted: z-score-only rung over the raw series.
		mNormZOnly.Inc()
		return zScoreOnly(series), nil
	}
	return mn, fitErr
}

// zScoreOnly builds the degradation-rung normalization for a series the
// Box-Cox fit cannot (or was not allowed to) handle: identity transform,
// moments over the finite observations only. With no finite observations
// Std stays 0, so every relative score collapses to the "no signal" z=0.
func zScoreOnly(series []float64) MeasureNorm {
	finite := series
	for _, v := range series {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			finite = make([]float64, 0, len(series))
			for _, w := range series {
				if !math.IsNaN(w) && !math.IsInf(w, 0) {
					finite = append(finite, w)
				}
			}
			break
		}
	}
	return MeasureNorm{
		BoxCox: stats.BoxCoxParams{Lambda: 1},
		Mean:   stats.Mean(finite),
		Std:    stats.StdDev(finite),
	}
}

func fitOne(series []float64) (MeasureNorm, error) {
	if len(series) == 0 {
		return MeasureNorm{BoxCox: stats.BoxCoxParams{Lambda: 1}, Std: 0}, nil
	}
	transformed, params, err := stats.BoxCoxTransform(series)
	if err != nil {
		// Degenerate series — constant, or containing NaN/±Inf — cannot
		// carry a fitted λ: take the z-score-only rung (identity
		// transform, moments over the finite observations). Constant
		// all-finite series keep their historical behavior bit-for-bit
		// (Std 0 → z 0); non-finite series previously poisoned the
		// moments to NaN, which this guards against.
		mNormZOnly.Inc()
		return zScoreOnly(series), nil
	}
	return MeasureNorm{
		BoxCox: params,
		Mean:   stats.Mean(transformed),
		Std:    stats.StdDev(transformed),
	}, nil
}

// Apply fills dst with the standardized (relative) score of every measure
// present in raw.
func (n *Normalizer) Apply(raw map[string]float64, dst map[string]float64) {
	for name, v := range raw {
		mn, ok := n.Params[name]
		if !ok {
			continue
		}
		dst[name] = mn.Relative(v)
	}
}

// RelativeOne standardizes a single (measure, score) pair, for online use
// on actions outside the training log.
func (n *Normalizer) RelativeOne(measureName string, raw float64) (float64, error) {
	mn, ok := n.Params[measureName]
	if !ok {
		return 0, fmt.Errorf("offline: normalizer has no parameters for measure %q", measureName)
	}
	return mn.Relative(raw), nil
}
