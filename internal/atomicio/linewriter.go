package atomicio

import (
	"fmt"
	"os"
	"sync"
)

// LineWriter is the append-side complement to WriteFile: a goroutine-safe
// writer for line-oriented logs (the serve layer's JSONL access log).
// Where WriteFile replaces a whole artifact atomically, a log grows one
// record at a time, so the durability lever is different: every write
// appends with O_APPEND (concurrent processes interleave whole writes,
// not bytes), and the file is fsynced every SyncEvery writes and on
// Close, bounding how many trailing records a crash can lose.
type LineWriter struct {
	mu sync.Mutex
	f  *os.File
	// syncEvery is the write count between fsyncs; <1 means every write.
	syncEvery int
	pending   int
}

// NewLineWriter opens (creating if needed) path for appending. syncEvery
// bounds data loss: the file is fsynced after every syncEvery writes
// (<1 means after every write) and on Close.
func NewLineWriter(path string, syncEvery int) (*LineWriter, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("atomicio: open %s for append: %w", path, err)
	}
	if syncEvery < 1 {
		syncEvery = 1
	}
	return &LineWriter{f: f, syncEvery: syncEvery}, nil
}

// Write appends p (the caller supplies whole lines, newline included).
func (w *LineWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return 0, fmt.Errorf("atomicio: write to closed LineWriter")
	}
	n, err := w.f.Write(p)
	if err != nil {
		return n, fmt.Errorf("atomicio: append: %w", err)
	}
	w.pending++
	if w.pending >= w.syncEvery {
		w.pending = 0
		if err := w.f.Sync(); err != nil {
			return n, fmt.Errorf("atomicio: sync append: %w", err)
		}
	}
	return n, nil
}

// Close syncs and closes the underlying file. Further writes fail.
func (w *LineWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	f := w.f
	w.f = nil
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("atomicio: sync on close: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("atomicio: close: %w", err)
	}
	return nil
}
