package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strings"
)

// WriteCSV encodes the table as CSV. The first header row carries column
// names, the second carries column kinds ("#kinds:" prefix in first cell)
// so that ReadCSV can reconstruct the schema losslessly.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	schema := t.Schema()
	if err := cw.Write(schema.Names()); err != nil {
		return fmt.Errorf("dataset: write csv header: %w", err)
	}
	kinds := make([]string, len(schema))
	for i, f := range schema {
		kinds[i] = f.Kind.String()
	}
	if len(kinds) > 0 {
		kinds[0] = "#kinds:" + kinds[0]
	}
	if err := cw.Write(kinds); err != nil {
		return fmt.Errorf("dataset: write csv kinds: %w", err)
	}
	row := make([]string, len(schema))
	for i := 0; i < t.NumRows(); i++ {
		for j := range schema {
			row[j] = t.Cell(i, j).String()
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: write csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV decodes a table written by WriteCSV. The name parameter becomes
// the table name. If the second row is not a "#kinds:" row, all columns are
// treated as strings.
func ReadCSV(r io.Reader, name string) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: read csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dataset: read csv: empty input")
	}
	header := records[0]
	body := records[1:]
	schema := make(Schema, len(header))
	for i, h := range header {
		schema[i] = Field{Name: h, Kind: KindString}
	}
	if len(body) > 0 && len(body[0]) > 0 && strings.HasPrefix(body[0][0], "#kinds:") {
		kindRow := body[0]
		body = body[1:]
		if len(kindRow) != len(header) {
			return nil, fmt.Errorf("dataset: read csv: kinds row has %d fields, header has %d", len(kindRow), len(header))
		}
		for i, ks := range kindRow {
			if i == 0 {
				ks = strings.TrimPrefix(ks, "#kinds:")
			}
			k, err := ParseKind(ks)
			if err != nil {
				return nil, err
			}
			schema[i].Kind = k
		}
	}
	b := NewBuilder(name, schema)
	vals := make([]Value, len(schema))
	for ri, rec := range body {
		if len(rec) != len(schema) {
			return nil, fmt.Errorf("dataset: read csv: row %d has %d fields, want %d", ri, len(rec), len(schema))
		}
		for j, cell := range rec {
			v, err := ParseValue(schema[j].Kind, cell)
			if err != nil {
				return nil, fmt.Errorf("dataset: read csv: row %d col %q: %w", ri, schema[j].Name, err)
			}
			vals[j] = v
		}
		b.Append(vals...)
	}
	return b.Build()
}

// SaveCSV writes the table to a file path.
func SaveCSV(path string, t *Table) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: save csv: %w", err)
	}
	defer f.Close()
	if err := WriteCSV(f, t); err != nil {
		return err
	}
	return f.Close()
}

// LoadCSV reads a table from a file path; the base name (without extension)
// becomes the table name unless name is non-empty.
func LoadCSV(path, name string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: load csv: %w", err)
	}
	defer f.Close()
	if name == "" {
		name = strings.TrimSuffix(baseName(path), ".csv")
	}
	return ReadCSV(f, name)
}

func baseName(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
