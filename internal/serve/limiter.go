package serve

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// Adaptive overload control (DESIGN.md §13): a fixed MaxInFlight bound
// answers "how many requests fit" with a number picked at deploy time,
// but the true answer moves — with batch sizes, model size, noisy
// neighbors, GC. The AIMD limiter discovers it the way TCP discovers
// bandwidth: every completed request reports its latency; while the
// latency EWMA sits at or below the target, the ceiling creeps up
// additively (+1/limit per completion, so one full ceiling's worth of
// good completions raises it by ~1); when the EWMA crosses the target,
// the ceiling is cut multiplicatively (×0.9), with a cooldown so one
// congestion event is punished once, not once per in-flight request
// that drains after it.
//
// Priority admission is structural rather than a queue discipline:
// only the prediction/candidates paths acquire limiter slots, so
// /healthz, /readyz, /metrics and /v1/admin/* are never shed behind
// predict load — an orchestrator can always see a saturated server as
// alive, and an operator can always reach it.
var (
	// gInflightLimit is process-wide like every serve.* metric: when one
	// process hosts several servers (tests), the gauge shows the most
	// recent adjuster's ceiling.
	gInflightLimit  = obs.G("serve.inflight_limit")
	mLimiterBackoff = obs.C("serve.limiter_backoff")
)

const (
	// limiterAlpha smooths the latency EWMA driving AIMD decisions.
	limiterAlpha = 0.2
	// limiterDecrease is the multiplicative backoff on a latency breach.
	limiterDecrease = 0.9
	// limiterCooldown spaces multiplicative decreases: completions
	// already in flight when the ceiling dropped carry pre-drop latency
	// and must not each trigger another cut.
	limiterCooldown = 100 * time.Millisecond
)

// limiter bounds in-flight requests. With adaptive off it is exactly the
// old fixed semaphore (ceiling pinned at max); with adaptive on, the
// ceiling floats in [1, max] under AIMD control.
type limiter struct {
	adaptive bool
	max      float64
	target   float64 // ns; latency EWMA above this is congestion

	mu       sync.Mutex
	limit    float64
	inflight int
	ewma     float64 // ns
	lastCut  time.Time
}

func newLimiter(maxInFlight int, adaptive bool, target time.Duration) *limiter {
	l := &limiter{
		adaptive: adaptive,
		max:      float64(maxInFlight),
		target:   float64(target),
		limit:    float64(maxInFlight),
	}
	if obs.On() {
		gInflightLimit.Set(int64(l.limit))
	}
	return l
}

// tryAcquire claims a slot without queueing; false means shed now.
func (l *limiter) tryAcquire() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inflight >= int(l.limit) {
		return false
	}
	l.inflight++
	return true
}

// release returns a slot and, when adaptive, feeds the request's latency
// into the AIMD loop.
func (l *limiter) release(lat time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inflight > 0 {
		l.inflight--
	}
	if !l.adaptive || l.target <= 0 {
		return
	}
	ns := float64(lat)
	if l.ewma == 0 {
		l.ewma = ns
	} else {
		l.ewma = limiterAlpha*ns + (1-limiterAlpha)*l.ewma
	}
	prev := int(l.limit)
	if l.ewma > l.target {
		if now := time.Now(); now.Sub(l.lastCut) >= limiterCooldown {
			l.lastCut = now
			l.limit *= limiterDecrease
			if l.limit < 1 {
				l.limit = 1
			}
			if obs.On() {
				mLimiterBackoff.Inc()
			}
		}
	} else {
		l.limit += 1 / l.limit
		if l.limit > l.max {
			l.limit = l.max
		}
	}
	if obs.On() && int(l.limit) != prev {
		gInflightLimit.Set(int64(l.limit))
	}
}

// occupancy reports (in-flight, current ceiling) for Retry-After scaling.
func (l *limiter) occupancy() (int, int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	c := int(l.limit)
	if c < 1 {
		c = 1
	}
	return l.inflight, c
}
