package measures

import (
	"math"
	"testing"
	"testing/quick"
)

func TestShannonEvenness(t *testing.T) {
	m := ShannonMeasure{}
	even := aggDisplay(t, []string{"a", "b", "c", "d"}, []float64{10, 10, 10, 10}, 40)
	skewed := aggDisplay(t, []string{"a", "b", "c", "d"}, []float64{37, 1, 1, 1}, 40)
	se, ss := m.Score(ctxOf(even)), m.Score(ctxOf(skewed))
	if math.Abs(se-1) > 1e-9 {
		t.Errorf("shannon uniform = %v, want 1", se)
	}
	if ss >= se {
		t.Errorf("skewed %v should score below even %v", ss, se)
	}
	if got := m.Score(ctxOf(aggDisplay(t, []string{"a"}, []float64{5}, 5))); got != 0 {
		t.Errorf("single group = %v", got)
	}
}

func TestGiniInequality(t *testing.T) {
	m := GiniMeasure{}
	even := aggDisplay(t, []string{"a", "b"}, []float64{50, 50}, 100)
	skewed := aggDisplay(t, []string{"a", "b"}, []float64{99, 1}, 100)
	ge, gs := m.Score(ctxOf(even)), m.Score(ctxOf(skewed))
	if math.Abs(ge) > 1e-9 {
		t.Errorf("gini of even split = %v, want 0", ge)
	}
	if gs <= ge {
		t.Errorf("gini: skewed %v should exceed even %v", gs, ge)
	}
	if gs > 1 {
		t.Errorf("gini out of range: %v", gs)
	}
}

func TestBergerParkerDominance(t *testing.T) {
	m := BergerParkerMeasure{}
	d := aggDisplay(t, []string{"a", "b", "c"}, []float64{80, 15, 5}, 100)
	if got := m.Score(ctxOf(d)); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("berger-parker = %v, want 0.8", got)
	}
}

func TestMcIntoshEvenness(t *testing.T) {
	m := McIntoshMeasure{}
	even := aggDisplay(t, []string{"a", "b", "c", "d"}, []float64{1, 1, 1, 1}, 4)
	concentrated := aggDisplay(t, []string{"a", "b", "c", "d"}, []float64{100, 0, 0, 0}, 100)
	me, mc := m.Score(ctxOf(even)), m.Score(ctxOf(concentrated))
	if math.Abs(me-1) > 1e-9 {
		t.Errorf("mcintosh uniform = %v, want 1", me)
	}
	if math.Abs(mc) > 1e-9 {
		t.Errorf("mcintosh concentrated = %v, want 0", mc)
	}
}

func TestExtraMeasuresRegister(t *testing.T) {
	r := NewRegistry()
	for _, m := range ExtraMeasures() {
		if err := r.Register(m); err != nil {
			t.Fatalf("register %s: %v", m.Name(), err)
		}
		back, err := r.Get(m.Name())
		if err != nil || back.Name() != m.Name() {
			t.Fatalf("lookup %s failed", m.Name())
		}
	}
	if got := len(r.Names()); got != 12 {
		t.Errorf("registry size = %d, want 12", got)
	}
	// The extension set stays class-consistent.
	if len(r.ByClass(Diversity)) != 4 || len(r.ByClass(Dispersion)) != 4 {
		t.Error("extra measures not classified as expected")
	}
}

func TestExtraMeasuresBoundsProperty(t *testing.T) {
	f := func(weights []uint16) bool {
		if len(weights) < 2 || len(weights) > 48 {
			return true
		}
		d := fuzzAggDisplay(weights)
		ctx := &Context{Display: d}
		for _, m := range ExtraMeasures() {
			v := m.Score(ctx)
			if v < -1e-9 || v > 1+1e-9 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestShannonMcIntoshAgreeWithSchutzOnOrdering(t *testing.T) {
	// All three dispersion measures must order a clearly-even display
	// above a clearly-skewed one.
	even := ctxOf(aggDisplay(t, []string{"a", "b", "c"}, []float64{33, 33, 34}, 100))
	skew := ctxOf(aggDisplay(t, []string{"a", "b", "c"}, []float64{98, 1, 1}, 100))
	for _, m := range []Measure{SchutzMeasure{}, MacArthurMeasure{}, ShannonMeasure{}, McIntoshMeasure{}} {
		if m.Score(even) <= m.Score(skew) {
			t.Errorf("%s does not prefer the even display", m.Name())
		}
	}
}
