package main

import (
	"os"
	"strings"
	"testing"
)

// TestUsageCoversEveryCommand guards the single-source-of-truth property:
// usage() is generated from the commands table, so every dispatchable
// subcommand must appear in it.
func TestUsageCoversEveryCommand(t *testing.T) {
	u := usageText()
	for _, c := range commands {
		if !strings.Contains(u, c.name) {
			t.Errorf("usage text missing subcommand %q", c.name)
		}
		if !strings.Contains(u, c.help) {
			t.Errorf("usage text missing help for %q", c.name)
		}
		if c.run == nil {
			t.Errorf("command %q has no run function", c.name)
		}
	}
	if !strings.Contains(u, "-telemetry") {
		t.Error("usage text missing the global -telemetry flag")
	}
	if !strings.Contains(u, "-parallel") {
		t.Error("usage text missing the global -parallel flag")
	}
}

// TestDocCommentCoversEveryCommand reads this file's package doc comment
// and checks it lists every subcommand, so the comment cannot silently go
// stale again (it once listed 4 of 8).
func TestDocCommentCoversEveryCommand(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	// The doc comment is everything before the package clause.
	idx := strings.Index(string(src), "\npackage main")
	if idx < 0 {
		t.Fatal("package clause not found")
	}
	doc := string(src[:idx])
	for _, c := range commands {
		if !strings.Contains(doc, "idarepro "+c.name) {
			t.Errorf("package doc comment missing subcommand %q", c.name)
		}
	}
	if !strings.Contains(doc, "-telemetry") {
		t.Error("package doc comment missing the -telemetry global flag")
	}
	if !strings.Contains(doc, "-parallel") {
		t.Error("package doc comment missing the -parallel global flag")
	}
}

func TestCommandNamesUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, c := range commands {
		if seen[c.name] {
			t.Errorf("duplicate command %q", c.name)
		}
		seen[c.name] = true
	}
}
