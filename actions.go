package repro

import (
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
)

// Convenience constructors so applications can build actions and operand
// values without importing internal packages.

// GroupCount builds a group-by action counting rows per group.
func GroupCount(column string) *Action { return engine.NewGroupCount(column) }

// Aggregate functions for GroupAgg.
const (
	Sum = engine.AggSum
	Avg = engine.AggAvg
	Min = engine.AggMin
	Max = engine.AggMax
)

// GroupAgg builds a group-by action aggregating a column per group.
func GroupAgg(groupBy string, agg engine.AggFunc, column string) *Action {
	return engine.NewGroupAgg(groupBy, agg, column)
}

// Filter builds a conjunctive filter action.
func Filter(preds ...Predicate) *Action { return engine.NewFilter(preds...) }

// TopK builds a top-k action keeping the k rows with the largest values of
// column (smallest when ascending).
func TopK(column string, k int, ascending bool) *Action {
	return engine.NewTopK(column, k, ascending)
}

// Predicate constructors.

// Eq matches rows whose column equals the value.
func Eq(column string, v Value) Predicate {
	return Predicate{Column: column, Op: engine.OpEq, Operand: v}
}

// Neq matches rows whose column differs from the value.
func Neq(column string, v Value) Predicate {
	return Predicate{Column: column, Op: engine.OpNeq, Operand: v}
}

// Lt / Le / Gt / Ge are the ordered comparisons.
func Lt(column string, v Value) Predicate {
	return Predicate{Column: column, Op: engine.OpLt, Operand: v}
}

// Le matches rows whose column is at most the value.
func Le(column string, v Value) Predicate {
	return Predicate{Column: column, Op: engine.OpLe, Operand: v}
}

// Gt matches rows whose column exceeds the value.
func Gt(column string, v Value) Predicate {
	return Predicate{Column: column, Op: engine.OpGt, Operand: v}
}

// Ge matches rows whose column is at least the value.
func Ge(column string, v Value) Predicate {
	return Predicate{Column: column, Op: engine.OpGe, Operand: v}
}

// Contains matches rows whose column's string form contains the value's.
func Contains(column string, v Value) Predicate {
	return Predicate{Column: column, Op: engine.OpContains, Operand: v}
}

// Value constructors.

// Str builds a string value.
func Str(s string) Value { return dataset.S(s) }

// Int builds an integer value.
func Int(i int64) Value { return dataset.I(i) }

// Float builds a float value.
func Float(f float64) Value { return dataset.F(f) }

// Time builds a timestamp value.
func Time(t time.Time) Value { return dataset.T(t) }
