package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/client"
	"repro/internal/snapshot"
)

// cmdClient exercises a running prediction server through the resilient
// client (internal/client): retries with jittered backoff honoring
// Retry-After, a circuit breaker, and prior-label degradation while the
// breaker is open. Input is the wire-context JSON array that
// `idarepro train -contexts` writes.
func cmdClient(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("client", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "server base URL")
	ctxPath := fs.String("contexts", "", "wire-context JSON array (written by idarepro train -contexts)")
	limit := fs.Int("limit", 0, "cap on contexts sent (0 = all)")
	prior := fs.String("prior", "", "pin the degraded-mode prior label (default: learned from /v1/model)")
	batch := fs.Bool("batch", false, "send everything as one /v1/predict/batch request instead of per-context calls")
	deadline := fs.Duration("deadline", 0, "per-request budget: stamped as X-Deadline-Ms and stops retries it cannot fund (0 = none)")
	verbose := fs.Bool("v", false, "print one line per prediction, not just the summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *ctxPath == "" {
		return fmt.Errorf("client: -contexts FILE is required")
	}
	blob, err := os.ReadFile(*ctxPath)
	if err != nil {
		return err
	}
	var wire []*snapshot.WireContext
	if err := json.Unmarshal(blob, &wire); err != nil {
		return fmt.Errorf("client: parse %s: %w", *ctxPath, err)
	}
	if len(wire) == 0 {
		return fmt.Errorf("client: %s holds no contexts", *ctxPath)
	}
	if *limit > 0 && len(wire) > *limit {
		wire = wire[:*limit]
	}

	cl, err := client.New(client.Options{BaseURL: *addr, PriorLabel: *prior})
	if err != nil {
		return err
	}
	// Best-effort: the model status names the prior label the client
	// degrades to; a down server is exactly what the breaker is for, so
	// a failure here is reported but not fatal.
	if st, err := cl.Model(ctx); err == nil {
		fmt.Fprintf(os.Stderr, "client: server model %s generation %d (%d samples, prior %q)\n",
			st.Method, st.Generation, st.TrainingSize, st.Prior)
	} else {
		fmt.Fprintln(os.Stderr, "client: /v1/model unavailable:", err)
	}

	// budgeted derives the per-request context: with -deadline the client
	// stamps the remaining budget as X-Deadline-Ms and gives up on retries
	// the budget cannot fund (client.ErrBudgetExhausted).
	budgeted := func() (context.Context, context.CancelFunc) {
		if *deadline > 0 {
			return context.WithTimeout(ctx, *deadline)
		}
		return ctx, func() {}
	}

	var preds []client.Prediction
	failed := 0
	if *batch {
		bctx, cancel := budgeted()
		preds, err = cl.PredictBatch(bctx, wire)
		cancel()
		if err != nil {
			return err
		}
	} else {
		preds = make([]client.Prediction, 0, len(wire))
		for i, wc := range wire {
			rctx, cancel := budgeted()
			p, err := cl.Predict(rctx, wc)
			cancel()
			if err != nil {
				// Per-context failures are the client's normal weather —
				// keep going so the breaker can open and later contexts
				// degrade to the prior instead of erroring. A canceled
				// command context is the one non-recoverable case.
				if ctx.Err() != nil {
					return err
				}
				failed++
				fmt.Fprintf(os.Stderr, "client: context %d: %v\n", i, err)
				continue
			}
			preds = append(preds, p)
		}
	}
	if len(preds) == 0 && failed > 0 {
		return fmt.Errorf("client: all %d requests failed (breaker %s)", failed, cl.BreakerState())
	}

	var predicted, abstained, fallback, degraded int
	for i, p := range preds {
		switch {
		case p.Degraded:
			degraded++
		case !p.OK:
			abstained++
		case p.Fallback:
			fallback++
		default:
			predicted++
		}
		if *verbose {
			label := p.Measure
			if !p.OK {
				label = "(abstain)"
			}
			fmt.Printf("context %3d: %-12s fallback=%v degraded=%v\n", i, label, p.Fallback, p.Degraded)
		}
	}
	fmt.Printf("sent %d contexts: %d predicted, %d by fallback, %d abstained, %d degraded, %d failed (breaker %s)\n",
		len(wire), predicted, fallback, abstained, degraded, failed, cl.BreakerState())
	return nil
}
