// Package checkpoint persists the progress of long-running pipeline
// phases (offline analysis, kNN training) so a crash, SIGKILL, or
// cancellation can resume instead of restarting from zero. The design
// contract, enforced by the root kill-resume-compare chaos test, is that
// a resumed run produces output *bit-identical* to an uninterrupted one:
// checkpoints therefore store only completed results keyed by stable
// indices (never scheduler-dependent state), and resume eligibility is
// gated on a content fingerprint of the inputs plus every
// result-affecting option.
//
// Durability model: a single checkpoint file per directory, written
// atomically (temp + fsync + rename, internal/atomicio) inside a
// checksummed envelope, so the file on disk is always a complete,
// verifiable snapshot of progress — a kill mid-write leaves the previous
// checkpoint intact. Writes are best-effort by design: a failed flush
// (disk trouble, or the checkpoint.write chaos probe) increments an obs
// counter and leaves the progress dirty in memory for the next flush;
// the computation itself never stalls on checkpoint I/O.
package checkpoint

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"repro/internal/atomicio"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// The on-disk envelope mirrors internal/snapshot's:
//
//	offset  size  field
//	0       8     magic "IDACKPTv"
//	8       4     format version (big-endian uint32)
//	12      4     flags (bit 0: payload is gzip-compressed)
//	16      8     payload length in bytes (big-endian uint64)
//	24      n     payload (JSON-encoded progress file, gzipped)
//	24+n    8     FNV-64a checksum of the payload bytes (big-endian)
const (
	magic = "IDACKPTv"
	// Version is the current checkpoint format version.
	Version = 1

	flagGzip = 1 << 0

	// maxPayload bounds the declared payload length so a corrupted header
	// cannot make the reader allocate unbounded memory.
	maxPayload = 8 << 30
)

// FileName is the checkpoint file inside a checkpoint directory.
const FileName = "progress.ckpt"

// ErrFingerprint is wrapped by Open when an existing checkpoint was
// taken against different inputs (datasets, session log, or
// result-affecting options) than the resuming run's.
var ErrFingerprint = errors.New("checkpoint fingerprint mismatch (different data or options; delete the checkpoint directory to start over)")

// ErrChecksum is wrapped by Open when the checkpoint payload does not
// match its stored checksum.
var ErrChecksum = errors.New("checkpoint checksum mismatch")

var (
	mWrites      = obs.C("checkpoint.writes")
	mWriteFailed = obs.C("checkpoint.write_failed")
	mResumedHits = obs.C("checkpoint.stages_resumed")
)

// Progress is a stage's completion state, mirroring the Done/Total shape
// of pipeline.Error so partially-checkpointed stages report the same way
// interrupted ones do.
type Progress struct {
	Done     int  `json:"done"`
	Total    int  `json:"total"`
	Complete bool `json:"complete,omitempty"`
}

// stageRec is one stage's persisted record.
type stageRec struct {
	Progress
	Payload json.RawMessage `json:"payload,omitempty"`
}

// progressFile is the JSON payload of the envelope.
type progressFile struct {
	// Fingerprint identifies the inputs this progress belongs to
	// (hex-encoded; see session.Repository.Fingerprint and the offline
	// option hashing layered on top of it).
	Fingerprint string               `json:"fingerprint"`
	Stages      map[string]*stageRec `json:"stages"`
}

// Manager owns one checkpoint file. All methods are safe for concurrent
// use; worker-pool completion callbacks update it directly.
type Manager struct {
	path        string
	fingerprint uint64
	resumed     bool

	mu      sync.Mutex
	f       progressFile
	dirty   bool
	flushes int
}

// Open prepares a checkpoint manager rooted at dir (created if needed),
// for inputs identified by fingerprint. With resume set, an existing
// checkpoint file is loaded and its stages become visible through Stage;
// a fingerprint mismatch or corruption fails loudly rather than silently
// recomputing (or worse, resuming against the wrong data). Without
// resume, any existing checkpoint is ignored and overwritten by the
// first flush.
func Open(dir string, fingerprint uint64, resume bool) (*Manager, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: create dir: %w", err)
	}
	m := &Manager{
		path:        filepath.Join(dir, FileName),
		fingerprint: fingerprint,
		f: progressFile{
			Fingerprint: fmt.Sprintf("%016x", fingerprint),
			Stages:      map[string]*stageRec{},
		},
	}
	if !resume {
		return m, nil
	}
	blob, err := os.ReadFile(m.path)
	if errors.Is(err, os.ErrNotExist) {
		return m, nil // nothing to resume; start fresh
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read: %w", err)
	}
	f, err := decode(blob)
	if err != nil {
		return nil, err
	}
	if f.Fingerprint != m.f.Fingerprint {
		return nil, fmt.Errorf("checkpoint: stored %s, inputs hash %s: %w",
			f.Fingerprint, m.f.Fingerprint, ErrFingerprint)
	}
	if f.Stages == nil {
		f.Stages = map[string]*stageRec{}
	}
	m.f = *f
	m.resumed = true
	return m, nil
}

// Path returns the checkpoint file path.
func (m *Manager) Path() string { return m.path }

// Resumed reports whether Open loaded an existing compatible checkpoint.
func (m *Manager) Resumed() bool { return m.resumed }

// Stage returns a stage's persisted payload and progress. ok is false
// when the stage was never checkpointed. Callers treat the payload as
// advisory: a stage that fails to decode is simply recomputed.
func (m *Manager) Stage(name string) (payload json.RawMessage, p Progress, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.f.Stages[name]
	if !ok {
		return nil, Progress{}, false
	}
	if obs.On() {
		mResumedHits.Inc()
	}
	return rec.Payload, rec.Progress, true
}

// Update records a stage's progress and payload and flushes the file.
// Callers throttle their own cadence (e.g. every N completed items); a
// flush that fails with an injected fault is absorbed — the progress
// stays dirty in memory and the next Update or Sync retries it — so
// checkpointing never fails the computation it protects. A nil payload
// keeps the stage's previous payload.
func (m *Manager) Update(name string, p Progress, payload any) error {
	var raw json.RawMessage
	if payload != nil {
		blob, err := json.Marshal(payload)
		if err != nil {
			return fmt.Errorf("checkpoint: encode %s payload: %w", name, err)
		}
		raw = blob
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	rec := m.f.Stages[name]
	if rec == nil {
		rec = &stageRec{}
		m.f.Stages[name] = rec
	}
	rec.Progress = p
	if raw != nil {
		rec.Payload = raw
	}
	m.dirty = true
	return m.flushLocked()
}

// Sync flushes any dirty progress to disk now.
func (m *Manager) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirty {
		return nil
	}
	return m.flushLocked()
}

func (m *Manager) flushLocked() error {
	blob, err := encode(&m.f)
	if err != nil {
		return err
	}
	// The probe key is the flush ordinal: checkpoint writes are pure
	// side-effects of already-computed results, so write-fault decisions
	// can never influence pipeline output — only whether this particular
	// flush persists.
	key := strconv.Itoa(m.flushes)
	m.flushes++
	err = faults.DefaultRetry.Do(nil, func(attempt int) error {
		return m.writeGuarded(faults.Key(key, attempt), blob)
	})
	if err != nil {
		mWriteFailed.Inc()
		if faults.IsInjected(err) {
			return nil // degraded: stay dirty, retry at the next flush
		}
		return err
	}
	m.dirty = false
	if obs.On() {
		mWrites.Inc()
	}
	return nil
}

// writeGuarded is one atomic write attempt behind the checkpoint.write
// chaos probe; an injected panic is recovered into a retryable error.
func (m *Manager) writeGuarded(key string, blob []byte) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = pipeline.Recovered(faults.SiteCheckpointWrite, r)
		}
	}()
	if faults.Enabled() {
		if err := faults.Inject(faults.SiteCheckpointWrite, key, faults.KindAll); err != nil {
			return err
		}
	}
	return atomicio.WriteFile(m.path, func(w io.Writer) error {
		_, werr := w.Write(blob)
		return werr
	})
}

// encode wraps the progress file in the checksummed envelope.
func encode(f *progressFile) ([]byte, error) {
	raw, err := json.Marshal(f)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: encode: %w", err)
	}
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	if _, err := zw.Write(raw); err != nil {
		return nil, fmt.Errorf("checkpoint: compress: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("checkpoint: compress: %w", err)
	}
	payload := zbuf.Bytes()

	out := make([]byte, 0, 24+len(payload)+8)
	var head [24]byte
	copy(head[:8], magic)
	binary.BigEndian.PutUint32(head[8:12], Version)
	binary.BigEndian.PutUint32(head[12:16], flagGzip)
	binary.BigEndian.PutUint64(head[16:24], uint64(len(payload)))
	out = append(out, head[:]...)
	out = append(out, payload...)
	h := fnv.New64a()
	h.Write(payload)
	var sum [8]byte
	binary.BigEndian.PutUint64(sum[:], h.Sum64())
	return append(out, sum[:]...), nil
}

// decode parses and verifies the envelope: magic and version first, then
// the checksum, and only then the JSON decode.
func decode(blob []byte) (*progressFile, error) {
	if len(blob) < 24+8 {
		return nil, fmt.Errorf("checkpoint: file truncated at %d bytes", len(blob))
	}
	if string(blob[:8]) != magic {
		return nil, fmt.Errorf("checkpoint: bad magic %q (not a checkpoint file)", blob[:8])
	}
	version := binary.BigEndian.Uint32(blob[8:12])
	if version > Version {
		return nil, fmt.Errorf("checkpoint: file version %d, this build reads <= %d", version, Version)
	}
	flags := binary.BigEndian.Uint32(blob[12:16])
	n := binary.BigEndian.Uint64(blob[16:24])
	if n > maxPayload || n != uint64(len(blob)-24-8) {
		return nil, fmt.Errorf("checkpoint: declared payload length %d does not fit a %d-byte file", n, len(blob))
	}
	payload := blob[24 : 24+n]
	h := fnv.New64a()
	h.Write(payload)
	if got, want := h.Sum64(), binary.BigEndian.Uint64(blob[24+n:]); got != want {
		return nil, fmt.Errorf("checkpoint: payload hash %016x, stored %016x: %w", got, want, ErrChecksum)
	}
	raw := payload
	if flags&flagGzip != 0 {
		zr, err := gzip.NewReader(bytes.NewReader(payload))
		if err != nil {
			return nil, fmt.Errorf("checkpoint: decompress: %w", err)
		}
		raw, err = io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: decompress: %w", err)
		}
		if err := zr.Close(); err != nil {
			return nil, fmt.Errorf("checkpoint: decompress: %w", err)
		}
	}
	var f progressFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("checkpoint: decode: %w", err)
	}
	return &f, nil
}
