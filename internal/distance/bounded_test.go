package distance

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/session"
)

// boundedContexts builds a spread of contexts with different sizes and
// depths so both lower bounds (size, height) and the full-DP path are
// exercised.
func boundedContexts(t *testing.T) []*session.Context {
	t.Helper()
	root := packetRoot(t)
	gc := func(col string) *engine.Action { return engine.NewGroupCount(col) }
	flt := func(h int64) *engine.Action {
		return engine.NewFilter(engine.Predicate{Column: "hour", Op: engine.OpGt, Operand: dataset.I(h)})
	}
	var ctxs []*session.Context
	// Linear filter chains of growing length (filters preserve the schema,
	// so chains of any depth stay executable), capped by a group-count.
	for l := 1; l <= 5; l++ {
		actions := make([]*engine.Action, 0, l)
		for i := 0; i < l-1; i++ {
			actions = append(actions, flt(int64(8+i)))
		}
		actions = append(actions, gc([]string{"protocol", "dst_ip", "hour"}[l%3]))
		s := sessionWith(t, root, actions...)
		for n := 1; n <= 4; n += 3 {
			ctxs = append(ctxs, ctxAtEnd(t, s, n))
		}
	}
	// A branchy session: several actions from the root.
	s := sessionWith(t, root, gc("protocol"))
	if err := s.BackTo(s.Root()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(gc("dst_ip")); err != nil {
		t.Fatal(err)
	}
	if err := s.BackTo(s.Root()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(flt(19)); err != nil {
		t.Fatal(err)
	}
	ctxs = append(ctxs, ctxAtEnd(t, s, 3), ctxAtEnd(t, s, 5))
	return ctxs
}

// TestDistanceWithinMatchesDistance is the early-abandon correctness
// contract: for every pair and a sweep of bounds, (d, true) must carry the
// exact distance and (lb, false) must only ever discard pairs that the
// exact metric would discard too.
func TestDistanceWithinMatchesDistance(t *testing.T) {
	ctxs := boundedContexts(t)
	m := TreeEdit{}
	bounds := []float64{0, 0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.9, 1}
	abandoned := 0
	for i, a := range ctxs {
		for j, b := range ctxs {
			exact := m.Distance(a, b)
			for _, bound := range bounds {
				d, within := m.DistanceWithin(a, b, bound)
				if within {
					if d != exact {
						t.Fatalf("pair (%d,%d) bound %g: within=true d=%v, exact %v", i, j, bound, d, exact)
					}
					if d > bound {
						t.Fatalf("pair (%d,%d) bound %g: within=true but d=%v > bound", i, j, bound, d)
					}
				} else {
					abandoned++
					if exact <= bound {
						t.Fatalf("pair (%d,%d) bound %g: abandoned but exact %v <= bound", i, j, bound, exact)
					}
					if d > exact {
						t.Fatalf("pair (%d,%d) bound %g: reported lower bound %v exceeds exact %v", i, j, bound, d, exact)
					}
				}
			}
		}
	}
	if abandoned == 0 {
		t.Fatal("no pair ever abandoned; the bounds are vacuous for this corpus")
	}
}

// TestDistanceWithinMemoized checks the memoized metric variant keeps the
// same contract (NewMemoizedTreeEdit returns a TreeEdit, so it inherits
// DistanceWithin).
func TestDistanceWithinMemoized(t *testing.T) {
	ctxs := boundedContexts(t)
	m := NewMemoizedTreeEdit(nil)
	plain := TreeEdit{}
	for _, a := range ctxs {
		for _, b := range ctxs {
			exact := plain.Distance(a, b)
			d, within := m.DistanceWithin(a, b, 0.25)
			if within && d != exact {
				t.Fatalf("memoized within d=%v, exact %v", d, exact)
			}
			if !within && exact <= 0.25 {
				t.Fatalf("memoized abandoned a pair with exact %v <= 0.25", exact)
			}
		}
	}
}

// TestWithinFallback checks the generic helper on a metric without a
// bounded implementation.
func TestWithinFallback(t *testing.T) {
	ctxs := boundedContexts(t)
	m := LastActionMetric{}
	for _, a := range ctxs[:4] {
		for _, b := range ctxs[:4] {
			exact := m.Distance(a, b)
			d, within := Within(m, a, b, 0.3)
			if d != exact {
				t.Fatalf("fallback d=%v, exact %v", d, exact)
			}
			if within != (exact <= 0.3) {
				t.Fatalf("fallback within=%v for d=%v", within, exact)
			}
		}
	}
	// And that the bounded path is taken for TreeEdit.
	te := TreeEdit{}
	if _, ok := Metric(te).(BoundedMetric); !ok {
		t.Fatal("TreeEdit does not implement BoundedMetric")
	}
}

// TestLowerBoundNeverExceedsDistance fuzzes the bound against the exact
// metric over all corpus pairs.
func TestLowerBoundNeverExceedsDistance(t *testing.T) {
	ctxs := boundedContexts(t)
	m := TreeEdit{}
	for _, a := range ctxs {
		for _, b := range ctxs {
			ta, tb := flatten(a), flatten(b)
			if len(ta.nodes) == 0 || len(tb.nodes) == 0 {
				continue
			}
			lb := lowerBound(ta, tb)
			if exact := m.Distance(a, b); lb > exact+1e-12 {
				t.Fatalf("lower bound %v exceeds exact distance %v (sizes %d/%d heights %d/%d)",
					lb, exact, len(ta.nodes), len(tb.nodes), ta.height, tb.height)
			}
		}
	}
}
