// Package repro is a from-scratch Go reproduction of
//
//	Milo, Ozeri, Somech: "Predicting 'What is Interesting' by Mining
//	Interactive-Data-Analysis Session Logs", EDBT 2019.
//
// It implements the paper's full stack: a generic IDA model (datasets,
// filter/group-and-aggregate actions, displays, session trees), the eight
// interestingness measures of Table 1, the two offline interestingness
// comparison methods (Reference-Based, Algorithm 1; Normalized with
// Box-Cox + z-score, Algorithm 2), n-context extraction, the tree-edit
// session distance, and the I-kNN predictive model with its RANDOM /
// Best-SM / I-SVM baselines — plus a calibrated simulator standing in for
// the REACT-IDA session log.
//
// This root package is the public facade; the subsystems live in
// internal/ packages and are re-exported here through type aliases, so
// the whole pipeline is drivable from a single import:
//
//	fw, _ := repro.GenerateBenchmark(repro.SimulatorConfig{})
//	_ = fw.RunOfflineAnalysis(repro.AnalysisOptions{})
//	pred, _ := fw.TrainPredictor(repro.DefaultMeasureSet(), repro.Normalized, repro.DefaultPredictorConfig(repro.Normalized))
//	label, ok := pred.PredictState(state)
package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/checkpoint"
	"repro/internal/dataset"
	"repro/internal/distance"
	"repro/internal/engine"
	"repro/internal/eval"
	"repro/internal/knn"
	knnindex "repro/internal/knn/index"
	"repro/internal/measures"
	"repro/internal/netlog"
	"repro/internal/offline"
	"repro/internal/pipeline"
	"repro/internal/ring"
	"repro/internal/serve"
	"repro/internal/session"
	"repro/internal/simulate"
	"repro/internal/snapshot"
)

// Re-exported types: the data substrate.
type (
	// Table is an immutable, typed, columnar relational table.
	Table = dataset.Table
	// Schema describes a table's columns.
	Schema = dataset.Schema
	// Value is a dynamically typed cell value.
	Value = dataset.Value

	// Action is one analysis step (filter or group-and-aggregate).
	Action = engine.Action
	// Predicate is a single-column filter comparison.
	Predicate = engine.Predicate
	// Display is the results screen an action produces.
	Display = engine.Display

	// Session is an IDA session modeled as an ordered labeled tree.
	Session = session.Session
	// State is a session state S_t.
	State = session.State
	// NContext is the n-context c_t of a session state.
	NContext = session.Context
	// Repository is a session log repository.
	Repository = session.Repository

	// Measure scores one interestingness facet.
	Measure = measures.Measure
	// MeasureSet is an ordered measure configuration (the paper's I).
	MeasureSet = measures.Set
	// MeasureClass is an interestingness facet.
	MeasureClass = measures.Class

	// Method selects an offline comparison method.
	Method = offline.Method
	// Analysis holds offline per-action relative scores.
	Analysis = offline.Analysis
	// AnalysisOptions configures RunOfflineAnalysis.
	AnalysisOptions = offline.Options
	// Sample is a labeled training example.
	Sample = offline.Sample

	// SimulatorConfig configures benchmark generation.
	SimulatorConfig = simulate.Config
	// NetlogConfig configures the synthetic dataset generator.
	NetlogConfig = netlog.Config

	// Metrics are the five evaluation metrics of Section 4.2.
	Metrics = eval.Metrics

	// PipelineError is the typed failure of one pipeline stage: it names
	// the stage that stopped (e.g. "offline.reference", "knn.predict_all"),
	// carries the underlying cause (unwrappable to context.Canceled /
	// context.DeadlineExceeded), and reports partial progress (Done/Total
	// items). Every context-taking entry point of this package returns one
	// on cancellation, deadline expiry, or a recovered panic.
	PipelineError = pipeline.Error

	// FallbackPolicy selects what an abstaining kNN prediction degrades
	// to (PredictorConfig.Fallback).
	FallbackPolicy = knn.FallbackPolicy
)

// kNN fallback policies (the kNN rung of the degradation ladder).
const (
	// FallbackAbstain keeps abstentions (the paper's semantics; default).
	FallbackAbstain = knn.FallbackAbstain
	// FallbackNearest re-votes over the k nearest neighbors ignoring θ_δ.
	FallbackNearest = knn.FallbackNearest
	// FallbackPrior answers with the training set's most common label.
	FallbackPrior = knn.FallbackPrior
)

// ParseFallbackPolicy parses a fallback policy name ("abstain",
// "nearest" or "prior"), the inverse of FallbackPolicy.String.
func ParseFallbackPolicy(s string) (FallbackPolicy, error) {
	return knn.ParseFallbackPolicy(s)
}

// IsCanceled reports whether err (at any wrap depth) is a context
// cancellation or deadline expiry.
func IsCanceled(err error) bool { return pipeline.Canceled(err) }

// Comparison methods.
const (
	// ReferenceBased is Algorithm 1.
	ReferenceBased = offline.ReferenceBased
	// Normalized is Algorithm 2.
	Normalized = offline.Normalized
)

// DefaultMeasureSet returns the canonical one-per-class configuration
// {Variance, Schutz, OSF, Compaction Gain}.
func DefaultMeasureSet() MeasureSet { return measures.DefaultSet() }

// AllMeasureConfigurations returns the paper's 16 one-per-class
// configurations of I.
func AllMeasureConfigurations() []MeasureSet { return measures.AllConfigurations() }

// BuiltinMeasures returns the eight Table-1 measures.
func BuiltinMeasures() []Measure { return measures.BuiltinMeasures() }

// Framework bundles a session repository with its offline analysis and is
// the entry point for training predictors and reproducing the paper's
// experiments.
type Framework struct {
	// Repo is the session repository R.
	Repo *Repository
	// Analysis is populated by RunOfflineAnalysis.
	Analysis *Analysis
}

// GenerateBenchmark creates the four synthetic network-log datasets and
// simulates an analyst session log over them (the stand-in for REACT-IDA).
func GenerateBenchmark(cfg SimulatorConfig) (*Framework, error) {
	repo, err := simulate.Generate(cfg)
	if err != nil {
		return nil, err
	}
	return &Framework{Repo: repo}, nil
}

// NewFramework wraps an existing repository.
func NewFramework(repo *Repository) *Framework { return &Framework{Repo: repo} }

// NewRepository returns an empty session repository; register datasets
// with Repository.AddDataset and load logs with Repository.LoadLogFile.
func NewRepository() *Repository { return session.NewRepository() }

// RunOfflineAnalysis computes raw and relative interestingness scores for
// every recorded action under both comparison methods (Section 3.1).
func (f *Framework) RunOfflineAnalysis(opts AnalysisOptions) error {
	return f.RunOfflineAnalysisContext(nil, opts)
}

// RunOfflineAnalysisContext is RunOfflineAnalysis with cancellation: when
// ctx is canceled or its deadline expires, the analysis stops between
// per-action work items and a *PipelineError naming the interrupted stage
// is returned; f.Analysis is left unchanged. Panics escaping the analysis
// are recovered at this boundary and returned as a *PipelineError, so one
// poisoned session or action cannot kill the caller. A nil ctx never
// cancels.
func (f *Framework) RunOfflineAnalysisContext(ctx context.Context, opts AnalysisOptions) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = pipeline.Recovered("api.offline", r)
		}
	}()
	a, err := offline.AnalyzeContext(ctx, f.Repo, opts)
	if err != nil {
		return err
	}
	f.Analysis = a
	return nil
}

// PredictorConfig carries the model hyper-parameters of Table 4.
type PredictorConfig struct {
	// N is the n-context size.
	N int
	// K is the kNN size.
	K int
	// ThetaDelta is the distance threshold θ_δ.
	ThetaDelta float64
	// ThetaI is the interestingness threshold θ_I (method-scaled).
	ThetaI float64
	// Workers bounds the training-scan worker pool: <1 means one worker
	// per CPU, 1 forces the sequential path. Predictions are bit-identical
	// at every setting.
	Workers int
	// Fallback selects the degradation policy applied when the model
	// abstains. The zero value (FallbackAbstain) preserves the paper's
	// abstention semantics exactly.
	Fallback FallbackPolicy
}

// DefaultPredictorConfig returns the paper's default configuration for a
// comparison method (Table 4).
func DefaultPredictorConfig(m Method) PredictorConfig {
	if m == ReferenceBased {
		return PredictorConfig{N: 3, K: 3, ThetaDelta: 0.2, ThetaI: 0.92}
	}
	return PredictorConfig{N: 2, K: 3, ThetaDelta: 0.1, ThetaI: 0.7}
}

// Predictor is the trained I-kNN model: it selects the most suitable
// interestingness measure for a session state from the state's n-context.
type Predictor struct {
	clf    *knn.Classifier
	I      MeasureSet
	method Method
	cfg    PredictorConfig
	// norm is the fitted Algorithm-2 normalization state captured at
	// training time so a snapshot can carry it (nil when the analysis
	// had no normalizer).
	norm *offline.Normalizer
	// model caches the serializable form. A predictor restored from a
	// checkpoint or snapshot keeps the exact model it was restored from,
	// so re-serializing it is byte-identical to the original — the
	// property the kill-resume-compare chaos test pins down.
	model *snapshot.Model
	// checksum is the whole-file hash of the snapshot this predictor was
	// loaded from (empty when trained in-process) — the identity the ring
	// repair loop compares across replicas.
	checksum string
	// idxFromSnapshot records that the metric index was decoded from a
	// snapshot section rather than rebuilt; idxOff records an explicit
	// SetIndexing(false) (the -index=false operator path).
	idxFromSnapshot bool
	idxOff          bool
}

// ckptStageTrain is the training-stage checkpoint record: the complete
// snapshot.Model, written once training finishes. Named after the
// "api.train" pipeline stage it protects.
const ckptStageTrain = "api.train"

// TrainPredictor builds the labeled training set for (I, method) and
// constructs the kNN model. RunOfflineAnalysis must have been called.
func (f *Framework) TrainPredictor(I MeasureSet, method Method, cfg PredictorConfig) (*Predictor, error) {
	return f.TrainPredictorContext(nil, I, method, cfg)
}

// TrainPredictorContext is TrainPredictor with cancellation and boundary
// panic isolation: a ctx canceled before or during training-set
// construction returns a *PipelineError for the "api.train" stage, and
// panics escaping the build are recovered into the same type. A nil ctx
// never cancels.
func (f *Framework) TrainPredictorContext(ctx context.Context, I MeasureSet, method Method, cfg PredictorConfig) (p *Predictor, err error) {
	defer func() {
		if r := recover(); r != nil {
			p, err = nil, pipeline.Recovered("api.train", r)
		}
	}()
	if f.Analysis == nil {
		return nil, fmt.Errorf("repro: TrainPredictor requires RunOfflineAnalysis first")
	}
	if ctx != nil && ctx.Err() != nil {
		return nil, pipeline.Wrap("api.train", 0, 0, ctx.Err())
	}
	if cfg.N < 1 {
		fallback := cfg.Fallback
		cfg = DefaultPredictorConfig(method)
		cfg.Fallback = fallback
	}
	ck := f.Analysis.Checkpoint
	if p := resumeTrainedModel(ck, I, method, cfg); p != nil {
		return p, nil
	}
	samples := offline.BuildTrainingSet(f.Analysis, I, offline.TrainingOptions{
		N:              cfg.N,
		Method:         method,
		ThetaI:         cfg.ThetaI,
		SuccessfulOnly: true,
	})
	if len(samples) == 0 {
		return nil, fmt.Errorf("repro: training set is empty (θ_I too strict?)")
	}
	if ctx != nil && ctx.Err() != nil {
		return nil, pipeline.Wrap("api.train", 0, 0, ctx.Err())
	}
	clf := knn.New(samples, distance.NewMemoizedTreeEdit(nil), knn.Config{
		K:          cfg.K,
		ThetaDelta: cfg.ThetaDelta,
		Workers:    cfg.Workers,
		Fallback:   cfg.Fallback,
	})
	// Index at train time, so Save persists the built tree and serving
	// starts cold with it. The build is deterministic, so a resumed run
	// that rebuilds from the checkpointed model re-encodes byte-identical
	// snapshots (the kill-resume-compare contract).
	clf.BuildIndex()
	p = &Predictor{clf: clf, I: I, method: method, cfg: cfg, norm: f.Analysis.Normalizer}
	if ck != nil {
		// Persist the finished model so a killed-and-resumed run skips
		// training entirely and re-serializes these exact bytes.
		_ = ck.Update(ckptStageTrain, checkpoint.Progress{Done: 1, Total: 1, Complete: true}, p.snapshotModel())
		_ = ck.Sync()
	}
	return p, nil
}

// resumeTrainedModel restores a predictor from a completed train-stage
// checkpoint, or returns nil when there is none (or it was taken under a
// different model configuration — the analysis fingerprint already
// matched, so a config echo mismatch means the caller changed the train
// request, and the honest move is to retrain, not to resume the wrong
// model). Restore failures also fall back to retraining: the checkpoint
// is advisory, never load-bearing for correctness.
func resumeTrainedModel(ck *checkpoint.Manager, I MeasureSet, method Method, cfg PredictorConfig) *Predictor {
	if ck == nil || !ck.Resumed() {
		return nil
	}
	raw, prog, ok := ck.Stage(ckptStageTrain)
	if !ok || !prog.Complete {
		return nil
	}
	var m snapshot.Model
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil
	}
	names := I.Names()
	if m.Method != method.String() || len(m.Measures) != len(names) ||
		m.N != cfg.N || m.K != cfg.K || m.ThetaDelta != cfg.ThetaDelta ||
		m.ThetaI != cfg.ThetaI || m.Fallback != cfg.Fallback.String() {
		return nil
	}
	for i, n := range names {
		if m.Measures[i] != n {
			return nil
		}
	}
	// Sections are deliberately not checkpointed: the resumed path
	// rebuilds the index from the restored model, and because the build
	// is deterministic the resumed Save re-encodes the exact bytes an
	// uninterrupted run would have written.
	p, err := predictorFromModel(&m, nil)
	if err != nil {
		return nil
	}
	if p.cfg.Workers != cfg.Workers {
		p.SetWorkers(cfg.Workers)
	}
	return p
}

// TrainingSize returns the number of labeled samples behind the model.
func (p *Predictor) TrainingSize() int { return len(p.clf.Samples()) }

// Config returns the model's hyper-parameters.
func (p *Predictor) Config() PredictorConfig { return p.cfg }

// Method returns the comparison method the model was trained under.
func (p *Predictor) Method() Method { return p.method }

// SetWorkers rebounds the prediction fan-out width after construction or
// load — a deployment knob, not a model parameter: predictions are
// bit-identical at every setting. Set it before serving traffic.
func (p *Predictor) SetWorkers(n int) {
	p.cfg.Workers = n
	p.clf.SetWorkers(n)
}

// MeasureSet returns the measure configuration the model predicts over.
func (p *Predictor) MeasureSet() MeasureSet { return p.I }

// Predict selects the most suitable measure for an n-context. ok is false
// when the model abstains (no sufficiently similar training contexts).
func (p *Predictor) Predict(ctx *NContext) (measureName string, ok bool) {
	pred := p.clf.Predict(ctx)
	return pred.Label, pred.Covered
}

// PredictContext is Predict with cancellation and boundary panic
// isolation: a canceled ctx (or a panic escaping the scan) returns a
// *PipelineError instead of a prediction. A nil ctx never cancels.
func (p *Predictor) PredictContext(ctx context.Context, query *NContext) (measureName string, ok bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			measureName, ok, err = "", false, pipeline.Recovered("api.predict", r)
		}
	}()
	pred, err := p.clf.PredictCtx(ctx, query)
	if err != nil {
		return "", false, err
	}
	return pred.Label, pred.Covered, nil
}

// PredictState extracts the state's n-context (with the model's configured
// n) and predicts.
func (p *Predictor) PredictState(st State) (measureName string, ok bool) {
	return p.Predict(session.Extract(st, p.cfg.N))
}

// BatchPrediction is one result of Predictor.PredictAll. OK is false when
// the model abstained for that context. Fallback is true when the
// prediction came from the configured FallbackPolicy rather than the
// θ_δ-gated vote.
type BatchPrediction struct {
	MeasureName string
	OK          bool
	Fallback    bool
}

// PredictAll predicts a batch of n-contexts, fanning the queries out
// across the model's worker pool. The result is index-aligned with ctxs
// and identical to calling Predict per context.
func (p *Predictor) PredictAll(ctxs []*NContext) []BatchPrediction {
	out, _ := p.PredictAllContext(nil, ctxs)
	return out
}

// PredictAllContext is PredictAll with cancellation and boundary panic
// isolation: a canceled ctx stops the batch between queries and returns
// the partial result slice alongside a *PipelineError carrying how many
// predictions completed. A nil ctx never cancels.
func (p *Predictor) PredictAllContext(ctx context.Context, ctxs []*NContext) (out []BatchPrediction, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, pipeline.Recovered("api.predict_all", r)
		}
	}()
	preds, err := p.clf.PredictAllCtx(ctx, ctxs)
	out = make([]BatchPrediction, len(preds))
	for i, pr := range preds {
		out[i] = BatchPrediction{MeasureName: pr.Label, OK: pr.Covered, Fallback: pr.Fallback}
	}
	return out, err
}

// Measure resolves a predicted measure name to its implementation within
// the model's configuration.
func (p *Predictor) Measure(name string) (Measure, error) {
	if i := p.I.Index(name); i >= 0 {
		return p.I[i], nil
	}
	return nil, fmt.Errorf("repro: measure %q is not in the model's configuration %v", name, p.I.Names())
}

// SetIndexing toggles the vantage-point metric index (DESIGN.md §12).
// Disabling reverts every prediction to the plain linear scan — a
// recovery knob, not a model parameter: answers are bit-identical either
// way. Re-enabling rebuilds the index if the predictor has none.
func (p *Predictor) SetIndexing(enabled bool) {
	if !enabled {
		p.idxOff = true
		p.idxFromSnapshot = false
		p.clf.DisableIndex()
		return
	}
	p.idxOff = false
	if p.clf.Index() == nil {
		p.clf.BuildIndex()
	}
}

// IndexStatus reports how the predictor's metric index came to be:
// "snapshot" (decoded from a snapshot section — the cold-start fast
// path), "rebuilt" (constructed in-process, at train time or because the
// snapshot predated the section), or "off" (explicitly disabled).
func (p *Predictor) IndexStatus() string {
	switch {
	case p.idxOff:
		return "off"
	case p.idxFromSnapshot:
		return "snapshot"
	default:
		return "rebuilt"
	}
}

// snapshotSections returns the trailing sections Save/WriteSnapshot
// append after the model envelope: the serialized metric index, unless
// indexing is off. The wire form carries tree structure only — derived
// bounds are recomputed on decode — and the build is deterministic, so
// train→save→load→save round-trips byte-identically.
func (p *Predictor) snapshotSections() ([]snapshot.Section, error) {
	t := p.clf.Index()
	if p.idxOff || t == nil {
		return nil, nil
	}
	sec, err := snapshot.MarshalSection(snapshot.SectionKNNIndex, snapshot.KNNIndexVersion, t.Encode())
	if err != nil {
		return nil, err
	}
	return []snapshot.Section{sec}, nil
}

// snapshotModel returns the serializable form of the trained model,
// building and caching it on first use. A predictor restored from a
// snapshot or checkpoint already carries its model verbatim; only the
// Workers field — a deployment knob, not a model parameter — is patched
// (on a copy) when SetWorkers changed it after restore.
func (p *Predictor) snapshotModel() *snapshot.Model {
	if p.model == nil {
		p.model = p.buildModel()
	}
	if p.model.Workers != p.cfg.Workers {
		clone := *p.model
		clone.Workers = p.cfg.Workers
		p.model = &clone
	}
	return p.model
}

// buildModel assembles the serializable form of the trained model:
// hyper-parameters, measure names, normalization state, and every
// training context with its labels, displays interned in a shared pool
// (see internal/snapshot).
func (p *Predictor) buildModel() *snapshot.Model {
	m := &snapshot.Model{
		Method:     p.method.String(),
		Measures:   p.I.Names(),
		N:          p.cfg.N,
		K:          p.cfg.K,
		ThetaDelta: p.cfg.ThetaDelta,
		ThetaI:     p.cfg.ThetaI,
		Workers:    p.cfg.Workers,
		Fallback:   p.cfg.Fallback.String(),
	}
	if p.norm != nil {
		m.Norms = p.norm.Params
	}
	pool := snapshot.NewPool()
	m.Samples = make([]snapshot.SampleRec, len(p.clf.Samples()))
	for i, s := range p.clf.Samples() {
		m.Samples[i] = snapshot.SampleRec{
			Context: snapshot.EncodeContext(s.Context, pool),
			Labels:  append([]string(nil), s.Labels...),
			Best:    s.Best,
		}
	}
	m.Displays = pool.Displays()
	return m
}

// WriteSnapshot serializes the trained model to w in the versioned
// snapshot format (see internal/snapshot): a restored predictor produces
// bit-identical predictions, abstentions included. The prebuilt metric
// index trails the envelope as a versioned section, so loaders start
// serving without an index rebuild; pre-section readers ignore the tail.
func (p *Predictor) WriteSnapshot(w io.Writer) error {
	secs, err := p.snapshotSections()
	if err != nil {
		return err
	}
	return snapshot.WriteSections(w, p.snapshotModel(), secs...)
}

// Save writes the model snapshot to a file path atomically: a crash or
// write error mid-save never leaves a truncated snapshot visible.
func (p *Predictor) Save(path string) error {
	secs, err := p.snapshotSections()
	if err != nil {
		return err
	}
	return snapshot.SaveSections(path, p.snapshotModel(), secs...)
}

// ReadPredictor reconstructs a predictor from a snapshot stream. Measure
// names resolve against the built-in registry — models configured with
// user-defined (Func) measures cannot be restored by name and fail here.
func ReadPredictor(r io.Reader) (*Predictor, error) {
	m, secs, err := snapshot.ReadSections(r)
	if err != nil {
		return nil, err
	}
	return predictorFromModel(m, secs)
}

// LoadPredictor reads a model snapshot from a file path (the counterpart
// of Predictor.Save). The predictor remembers the file's whole-file
// checksum, which /v1/model reports so the ring repair loop can compare
// replica snapshots without re-downloading them.
func LoadPredictor(path string) (*Predictor, error) {
	m, secs, err := snapshot.LoadSections(path)
	if err != nil {
		return nil, err
	}
	p, err := predictorFromModel(m, secs)
	if err != nil {
		return nil, err
	}
	if sum, err := snapshot.FileChecksum(path); err == nil {
		p.checksum = sum
	}
	return p, nil
}

// predictorFromModel rebuilds a predictor from a decoded model plus any
// trailing snapshot sections. A SectionKNNIndex section attaches the
// persisted metric index (its structure re-validated against the decoded
// training set — a section that passed its checksum but fails validation
// is corruption and surfaces as an error, never a silent rebuild); with
// no section — an older, pre-index snapshot — the index is rebuilt here,
// deterministically, which is also what keeps checkpoint-resumed saves
// byte-identical to uninterrupted ones.
func predictorFromModel(m *snapshot.Model, secs []snapshot.Section) (*Predictor, error) {
	method, err := offline.ParseMethod(m.Method)
	if err != nil {
		return nil, fmt.Errorf("repro: load predictor: %w", err)
	}
	fb, err := knn.ParseFallbackPolicy(m.Fallback)
	if err != nil {
		return nil, fmt.Errorf("repro: load predictor: %w", err)
	}
	reg := measures.NewRegistry()
	I := make(MeasureSet, len(m.Measures))
	for i, name := range m.Measures {
		msr, err := reg.Get(name)
		if err != nil {
			return nil, fmt.Errorf("repro: load predictor: %w", err)
		}
		I[i] = msr
	}
	displays := snapshot.DecodeDisplays(m.Displays)
	samples := make([]*offline.Sample, len(m.Samples))
	for i, rec := range m.Samples {
		ctx, err := snapshot.DecodeContext(rec.Context, displays)
		if err != nil {
			return nil, fmt.Errorf("repro: load predictor: sample %d: %w", i, err)
		}
		samples[i] = &offline.Sample{Context: ctx, Labels: rec.Labels, Best: rec.Best}
	}
	cfg := PredictorConfig{
		N:          m.N,
		K:          m.K,
		ThetaDelta: m.ThetaDelta,
		ThetaI:     m.ThetaI,
		Workers:    m.Workers,
		Fallback:   fb,
	}
	clf := knn.New(samples, distance.NewMemoizedTreeEdit(nil), knn.Config{
		K:          cfg.K,
		ThetaDelta: cfg.ThetaDelta,
		Workers:    cfg.Workers,
		Fallback:   cfg.Fallback,
	})
	fromSnapshot := false
	for _, s := range secs {
		if s.Kind != snapshot.SectionKNNIndex {
			continue
		}
		var w knnindex.Wire
		if err := json.Unmarshal(s.Payload, &w); err != nil {
			return nil, fmt.Errorf("repro: load predictor: decode index section: %w", err)
		}
		if err := clf.AttachIndex(&w); err != nil {
			return nil, fmt.Errorf("repro: load predictor: %w", err)
		}
		fromSnapshot = true
	}
	if !fromSnapshot {
		clf.BuildIndex()
	}
	p := &Predictor{clf: clf, I: I, method: method, cfg: cfg, model: m, idxFromSnapshot: fromSnapshot}
	if len(m.Norms) > 0 {
		p.norm = &offline.Normalizer{Params: m.Norms}
	}
	return p, nil
}

// Serving layer re-exports.
type (
	// ServeOptions bounds the HTTP prediction server's resource envelope
	// (in-flight requests, batch size, body size, shutdown grace,
	// Retry-After scaling, hot-reload source).
	ServeOptions = serve.Options
	// ServeModelInfo is the model description part of /v1/model.
	ServeModelInfo = serve.ModelInfo
	// ServeModelStatus is the full /v1/model response: the model
	// description plus reload generation and load time.
	ServeModelStatus = serve.ModelStatus
	// ServeReloader builds a replacement model for hot reload (see
	// SnapshotReloader for the snapshot-file-backed implementation).
	ServeReloader = serve.Reloader
)

// SnapshotReloader returns a reloader that re-reads the model snapshot
// at path on every reload: wire it into ServeOptions.Reloader and a
// SIGHUP (or POST /v1/admin/reload) swaps in whatever model the file
// holds — after checksum verification and a self-test, atomically, with
// in-flight requests finishing on the model they started with.
func SnapshotReloader(path string) ServeReloader {
	return func() (*knn.Classifier, ServeModelInfo, error) {
		p, err := LoadPredictor(path)
		if err != nil {
			return nil, ServeModelInfo{}, err
		}
		return p.clf, p.modelInfo(), nil
	}
}

// EncodeWireContext converts an n-context to the self-contained JSON wire
// form the prediction server accepts (the "context"/"contexts" request
// fields).
func EncodeWireContext(c *NContext) *snapshot.WireContext {
	return snapshot.EncodeContext(c, nil)
}

// modelInfo describes the predictor for /v1/model.
func (p *Predictor) modelInfo() ServeModelInfo {
	return ServeModelInfo{
		Method:       p.method.String(),
		Measures:     p.I.Names(),
		N:            p.cfg.N,
		K:            p.cfg.K,
		ThetaDelta:   p.cfg.ThetaDelta,
		ThetaI:       p.cfg.ThetaI,
		Fallback:     p.cfg.Fallback.String(),
		TrainingSize: p.TrainingSize(),
		Prior:        p.clf.Prior(),
		Checksum:     p.checksum,
	}
}

// NewServer wraps the predictor in an HTTP prediction server (see
// internal/serve for the endpoint surface and degradation behavior).
func (p *Predictor) NewServer(opts ServeOptions) *serve.Server {
	return serve.New(p.clf, p.modelInfo(), opts)
}

// Handler returns the predictor's HTTP handler — /healthz, /readyz,
// /v1/model, /v1/predict, /v1/predict/batch — for mounting under an
// existing server or httptest.
func (p *Predictor) Handler(opts ServeOptions) http.Handler {
	return p.NewServer(opts).Handler()
}

// Serve runs the HTTP prediction server on addr until ctx is canceled,
// then drains gracefully (readiness flips first, in-flight requests
// complete). A clean drain returns nil.
func (p *Predictor) Serve(ctx context.Context, addr string, opts ServeOptions) error {
	return p.NewServer(opts).Run(ctx, addr)
}

// Sharded serving tier re-exports (DESIGN.md §11).
type (
	// RingSpec is the serialized ring topology (ring.json): shard count,
	// replica factor, and member nodes.
	RingSpec = ring.Spec
	// RingNode is one serve instance in a ring spec.
	RingNode = ring.Node
	// RingRouterOptions configures the fan-out router tier.
	RingRouterOptions = serve.RouterOptions
)

// LoadRingSpec reads and validates a ring.json topology file.
func LoadRingSpec(path string) (*RingSpec, error) { return ring.LoadSpec(path) }

// NewShardServer wraps the predictor in a ring-replica server: besides
// the full standalone endpoint surface, it partitions the training set
// by the spec's placement and serves kNN candidates for the shards the
// ring places on node (POST /v1/knn/candidates). The named node must be
// a member of the spec.
func (p *Predictor) NewShardServer(spec *RingSpec, node string, opts ServeOptions) (*serve.Server, error) {
	r, err := ring.New(spec)
	if err != nil {
		return nil, err
	}
	if _, ok := r.Node(node); !ok {
		return nil, fmt.Errorf("repro: node %q is not in the ring spec", node)
	}
	opts.Ring = r
	opts.NodeName = node
	return serve.New(p.clf, p.modelInfo(), opts), nil
}

// NewRingRouter builds the scatter-gather router for a ring topology.
// The snapshot at modelPath supplies the merge parameters (gate, vote,
// fallback, prior) and the reference checksum the repair loop pushes
// toward; it must be the same snapshot the replicas serve.
func NewRingRouter(modelPath string, spec *RingSpec, opts RingRouterOptions) (*serve.Router, error) {
	p, err := LoadPredictor(modelPath)
	if err != nil {
		return nil, err
	}
	r, err := ring.New(spec)
	if err != nil {
		return nil, err
	}
	opts.Info = p.modelInfo()
	opts.Cfg = p.clf.Config()
	opts.ModelPath = modelPath
	return serve.NewRouter(r, opts), nil
}
