package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
	"repro/internal/distance"
	"repro/internal/engine"
	"repro/internal/offline"
	"repro/internal/session"
	"repro/internal/stats"
)

// miniDisplay builds a materialized display over a small typed table.
func miniDisplay(rows int, seed int64) *engine.Display {
	b := dataset.NewBuilder("mini", dataset.Schema{
		{Name: "proto", Kind: dataset.KindString},
		{Name: "bytes", Kind: dataset.KindFloat},
	})
	protos := []string{"tcp", "udp", "icmp"}
	for i := 0; i < rows; i++ {
		b.Append(dataset.S(protos[(int(seed)+i)%3]), dataset.F(float64(i)*1.25+float64(seed)))
	}
	return engine.NewRootDisplay(b.MustBuild())
}

func filterAction() *engine.Action {
	return &engine.Action{Type: engine.ActionFilter, Predicates: []engine.Predicate{
		{Column: "bytes", Op: engine.OpGt, Operand: dataset.F(0.1 + 0.2)}, // non-representable sum: exactness matters
	}}
}

func groupAction() *engine.Action {
	return &engine.Action{Type: engine.ActionGroup, GroupBy: "proto", Agg: engine.AggCount, AggColumn: "proto"}
}

// miniContext builds a 2-node context: root display -> filtered display.
func miniContext(id string, t int, root, child *engine.Display) *session.Context {
	leaf := &session.CtxNode{Display: child, Action: filterAction(), Step: t}
	return &session.Context{
		SessionID: id,
		T:         t,
		N:         3,
		Size:      3,
		Root:      &session.CtxNode{Display: root, Step: 0, Children: []*session.CtxNode{leaf}},
	}
}

// TestWireContextRoundTripDistance is the core fidelity property: the
// tree-edit distance between an original context and any other context
// must equal, bit for bit, the distance computed against its decoded wire
// form — the summary displays carry exactly the state the metric reads.
func TestWireContextRoundTripDistance(t *testing.T) {
	rootA, childA := miniDisplay(50, 0), miniDisplay(7, 1)
	rootB, childB := miniDisplay(40, 2), miniDisplay(9, 3)
	ca := miniContext("sA", 2, rootA, childA)
	cb := miniContext("sB", 3, rootB, childB)

	wc := EncodeContext(ca, nil)
	back, err := DecodeContext(wc, nil)
	if err != nil {
		t.Fatal(err)
	}
	metric := distance.TreeEdit{}
	want := metric.Distance(ca, cb)
	got := metric.Distance(back, cb)
	if got != want {
		t.Fatalf("distance drifted through wire round trip: %v -> %v", want, got)
	}
	if d := metric.Distance(back, ca); d != 0 {
		t.Fatalf("decoded context is %v from its original, want exactly 0", d)
	}
	if back.SessionID != ca.SessionID || back.T != ca.T || back.N != ca.N || back.Size != ca.Size {
		t.Fatalf("context identity drifted: %+v", back)
	}
}

// TestWireActionRoundTrip pins exact operand fidelity (floats travel in
// shortest-exact form, not a truncated rendering).
func TestWireActionRoundTrip(t *testing.T) {
	root := miniDisplay(5, 0)
	ctx := &session.Context{SessionID: "s", T: 1, N: 2, Size: 2, Root: &session.CtxNode{
		Display: root, Action: filterAction(), Step: 1,
	}}
	back, err := DecodeContext(EncodeContext(ctx, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := distance.ActionDistance(ctx.Root.Action, back.Root.Action); d != 0 {
		t.Fatalf("action distance after round trip = %v, want 0", d)
	}
	got := back.Root.Action.Predicates[0].Operand.Flt
	if got != 0.1+0.2 {
		t.Fatalf("operand drifted: % .20f", got)
	}
	// Group actions round-trip too.
	g := &session.Context{SessionID: "g", T: 1, N: 2, Size: 2, Root: &session.CtxNode{
		Display: root, Action: groupAction(), Step: 1,
	}}
	gback, err := DecodeContext(EncodeContext(g, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := distance.ActionDistance(g.Root.Action, gback.Root.Action); d != 0 {
		t.Fatalf("group action drifted: %v", d)
	}
}

// TestPoolPreservesSharing: two contexts referencing the same display
// must decode to two contexts referencing the same *Display pointer.
func TestPoolPreservesSharing(t *testing.T) {
	shared := miniDisplay(30, 4)
	c1 := miniContext("s1", 1, shared, miniDisplay(3, 5))
	c2 := miniContext("s2", 2, shared, miniDisplay(4, 6))

	pool := NewPool()
	w1 := EncodeContext(c1, pool)
	w2 := EncodeContext(c2, pool)
	if n := len(pool.Displays()); n != 3 {
		t.Fatalf("pool has %d displays, want 3 (shared root interned once)", n)
	}
	displays := DecodeDisplays(pool.Displays())
	d1, err := DecodeContext(w1, displays)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := DecodeContext(w2, displays)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Root.Display != d2.Root.Display {
		t.Fatal("shared display decoded to distinct pointers")
	}
	if d1.Root.Children[0].Display == d2.Root.Children[0].Display {
		t.Fatal("distinct displays decoded to one pointer")
	}
}

func TestDecodeContextBadRef(t *testing.T) {
	w := &WireContext{SessionID: "s", Root: &WireNode{Step: 0, Ref: 5}}
	if _, err := DecodeContext(w, nil); err == nil {
		t.Fatal("out-of-range ref should fail")
	}
}

func testModel() *Model {
	pool := NewPool()
	ctx := miniContext("s1", 1, miniDisplay(20, 0), miniDisplay(5, 1))
	return &Model{
		Method:     "normalized",
		Measures:   []string{"variance", "schutz"},
		N:          2,
		K:          3,
		ThetaDelta: 0.1,
		ThetaI:     0.7,
		Fallback:   "abstain",
		Norms: map[string]offline.MeasureNorm{
			"variance": {BoxCox: stats.BoxCoxParams{Lambda: 0.3321928094887362, Shift: 1e-9}, Mean: 0.1 + 0.2, Std: math.Nextafter(1, 2)},
		},
		Displays: func() []*WireDisplay { EncodeContext(ctx, pool); return pool.Displays() }(),
		Samples: []SampleRec{
			{Context: EncodeContext(ctx, pool), Labels: []string{"variance"}, Best: 1.25},
		},
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	m := testModel()
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Method != m.Method || back.K != m.K || back.ThetaDelta != m.ThetaDelta {
		t.Fatalf("model drifted: %+v", back)
	}
	// Exact float fidelity through the envelope, last-ULP included.
	got := back.Norms["variance"]
	want := m.Norms["variance"]
	if got != want {
		t.Fatalf("norms drifted: % .20g vs % .20g", got, want)
	}
	if len(back.Samples) != 1 || back.Samples[0].Labels[0] != "variance" || back.Samples[0].Best != 1.25 {
		t.Fatalf("samples drifted: %+v", back.Samples)
	}
}

func TestSaveLoadAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.snap")
	if err := Save(path, testModel()); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err != nil {
		t.Fatal(err)
	}
	// A failed overwrite (missing directory) leaves the original loadable.
	if err := Save(filepath.Join(dir, "absent", "x.snap"), testModel()); err == nil {
		t.Fatal("save into missing directory should fail")
	}
	if _, err := Load(path); err != nil {
		t.Fatalf("original snapshot disturbed: %v", err)
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, testModel()); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Flip one payload byte: checksum must catch it before JSON parsing.
	bad := append([]byte(nil), good...)
	bad[30] ^= 0xff
	if _, err := Read(bytes.NewReader(bad)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupted payload: err = %v, want ErrChecksum", err)
	}

	// Truncation fails loudly.
	if _, err := Read(bytes.NewReader(good[:len(good)-4])); err == nil {
		t.Fatal("truncated snapshot should fail")
	}
	if _, err := Read(bytes.NewReader(good[:10])); err == nil {
		t.Fatal("truncated header should fail")
	}

	// Wrong magic.
	notSnap := append([]byte("NOTASNAP"), good[8:]...)
	if _, err := Read(bytes.NewReader(notSnap)); err == nil {
		t.Fatal("bad magic should fail")
	}

	// A newer format version is refused, not half-parsed.
	newer := append([]byte(nil), good...)
	binary.BigEndian.PutUint32(newer[8:12], Version+1)
	if _, err := Read(bytes.NewReader(newer)); !errors.Is(err, ErrNewerVersion) {
		t.Fatalf("newer version: err = %v, want ErrNewerVersion", err)
	}

	// An absurd declared payload length is capped, not allocated.
	huge := append([]byte(nil), good[:24]...)
	binary.BigEndian.PutUint64(huge[16:24], maxPayload+1)
	if _, err := Read(bytes.NewReader(huge)); err == nil {
		t.Fatal("oversized payload declaration should fail")
	}
}

// TestWriteRejectsNonFinite: NaN normalization state must fail the save
// loudly instead of writing a snapshot that silently skews predictions.
func TestWriteRejectsNonFinite(t *testing.T) {
	m := testModel()
	m.Norms["bad"] = offline.MeasureNorm{Mean: math.NaN()}
	var buf bytes.Buffer
	if err := Write(&buf, m); err == nil {
		t.Fatal("NaN in model should fail to encode")
	}
}
