package simulate

import (
	"testing"

	"repro/internal/measures"
	"repro/internal/netlog"
)

func smallConfig() Config {
	return Config{
		Analysts:      6,
		Sessions:      24,
		SuccessRate:   0.4,
		MeanActions:   4,
		Seed:          99,
		DatasetConfig: netlog.Config{Rows: 800},
	}
}

func TestGenerateCounts(t *testing.T) {
	repo, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	st := repo.ComputeStats()
	if st.Sessions != 24 {
		t.Errorf("sessions = %d", st.Sessions)
	}
	if st.Datasets != 4 {
		t.Errorf("datasets = %d", st.Datasets)
	}
	if st.Analysts != 6 {
		t.Errorf("analysts = %d", st.Analysts)
	}
	if st.Actions < 24*2 {
		t.Errorf("actions = %d, every session needs >= 2", st.Actions)
	}
	if st.SuccessfulSessions == 0 || st.SuccessfulSessions == st.Sessions {
		t.Errorf("successful sessions = %d/%d looks degenerate", st.SuccessfulSessions, st.Sessions)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	r1, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := r1.Sessions(), r2.Sessions()
	if len(s1) != len(s2) {
		t.Fatal("session counts differ")
	}
	for i := range s1 {
		if s1[i].Steps() != s2[i].Steps() || s1[i].Successful != s2[i].Successful {
			t.Fatalf("session %d differs between runs", i)
		}
		for step := 1; step <= s1[i].Steps(); step++ {
			a1 := s1[i].NodeAt(step).Action.String()
			a2 := s2[i].NodeAt(step).Action.String()
			if a1 != a2 {
				t.Fatalf("session %d step %d: %s vs %s", i, step, a1, a2)
			}
		}
	}
}

func TestGenerateSessionsReplayable(t *testing.T) {
	// Every generated session must be fully reconstructible from its log
	// form (the REACT-IDA property the repository relies on).
	repo, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range repo.Sessions()[:6] {
		for step := 1; step <= s.Steps(); step++ {
			n := s.NodeAt(step)
			if n.Display.NumRows() == 0 {
				t.Fatalf("session %s step %d has an empty display", s.ID, step)
			}
			if n.Parent == nil {
				t.Fatalf("session %s step %d has no parent", s.ID, step)
			}
		}
	}
}

func TestIntentClassMapping(t *testing.T) {
	want := map[Intent]measures.Class{
		Overview:  measures.Diversity,
		Verify:    measures.Dispersion,
		Drill:     measures.Peculiarity,
		Summarize: measures.Conciseness,
	}
	for intent, class := range want {
		if intent.Class() != class {
			t.Errorf("%v class = %v, want %v", intent, intent.Class(), class)
		}
		if intentMeasure(intent).Class() != class {
			t.Errorf("%v measure class mismatch", intent)
		}
	}
}

func TestTransitionRowsAreDistributions(t *testing.T) {
	for _, prev := range Intents {
		for _, cur := range Intents {
			row := transition(prev, cur)
			if len(row) != len(Intents) {
				t.Fatalf("(%v,%v) row size = %d", prev, cur, len(row))
			}
			sum := 0.0
			for _, p := range row {
				if p < 0 {
					t.Fatalf("(%v,%v) has negative transition prob", prev, cur)
				}
				sum += p
			}
			if sum < 0.999 || sum > 1.001 {
				t.Errorf("(%v,%v) transition row sums to %v", prev, cur, sum)
			}
		}
	}
}

func TestTransitionIsSecondOrder(t *testing.T) {
	// The chain must actually depend on the previous intent — this is
	// what makes larger n-contexts more informative (Figure 5's n
	// effect).
	differs := false
	for _, cur := range Intents {
		base := transition(cur, cur)
		for _, prev := range Intents {
			if prev == cur {
				continue
			}
			row := transition(prev, cur)
			for i := range row {
				if row[i] != base[i] {
					differs = true
				}
			}
		}
	}
	if !differs {
		t.Error("transition ignores the previous intent")
	}
}

func TestPercentileRanks(t *testing.T) {
	ranks := percentileRanks([]float64{10, 20, 30})
	if ranks[0] != 0 || ranks[2] != 1 || ranks[1] != 0.5 {
		t.Errorf("ranks = %v", ranks)
	}
	tied := percentileRanks([]float64{5, 5})
	if tied[0] != tied[1] {
		t.Errorf("tied ranks must be equal: %v", tied)
	}
	single := percentileRanks([]float64{3})
	if single[0] != 1 {
		t.Errorf("singleton rank = %v", single)
	}
}

func TestSessionLengthBounds(t *testing.T) {
	repo, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range repo.Sessions() {
		if s.Steps() < 2 || s.Steps() > 15 {
			t.Errorf("session %s length %d out of [2, 15]", s.ID, s.Steps())
		}
	}
}

func TestIntentStrings(t *testing.T) {
	names := map[string]bool{}
	for _, i := range Intents {
		names[i.String()] = true
	}
	if len(names) != 4 {
		t.Error("intent names must be distinct")
	}
}
