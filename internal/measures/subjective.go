package measures

import (
	"fmt"
	"sync"

	"repro/internal/stats"
)

// This file implements the paper's Section-5 extension direction:
// *subjective* interestingness measures that consult a model of the user's
// prior beliefs (following Liu et al. and De Bie). A BeliefBase encodes
// what the user expects specific column distributions to look like; the
// derived Surprisingness measure scores a display by how strongly its
// content violates those expectations. Unlike the objective Table-1
// measures, two users with different belief bases rank the same display
// differently.

// Belief is one expectation: the anticipated relative-frequency
// distribution of a column's values. Values absent from Expected are
// expected to be (near-)absent from the data.
type Belief struct {
	// Column the expectation concerns.
	Column string
	// Expected maps value (string form) -> expected relative frequency.
	// It is normalized on first use.
	Expected map[string]float64
	// Confidence in (0, 1] weights the belief's contribution; 0 means 1.
	Confidence float64
}

// BeliefBase is a user's set of expectations. It is safe for concurrent
// use once built.
type BeliefBase struct {
	mu      sync.RWMutex
	beliefs map[string]Belief
}

// NewBeliefBase builds a base from beliefs; later beliefs on the same
// column replace earlier ones.
func NewBeliefBase(beliefs ...Belief) *BeliefBase {
	b := &BeliefBase{beliefs: make(map[string]Belief, len(beliefs))}
	for _, bel := range beliefs {
		b.Add(bel)
	}
	return b
}

// Add inserts or replaces a belief.
func (b *BeliefBase) Add(bel Belief) {
	if bel.Confidence <= 0 || bel.Confidence > 1 {
		bel.Confidence = 1
	}
	b.mu.Lock()
	b.beliefs[bel.Column] = bel
	b.mu.Unlock()
}

// Columns returns the columns with registered expectations.
func (b *BeliefBase) Columns() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.beliefs))
	for c := range b.beliefs {
		out = append(out, c)
	}
	return out
}

// get returns the belief for one column.
func (b *BeliefBase) get(column string) (Belief, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	bel, ok := b.beliefs[column]
	return bel, ok
}

// SurprisingnessMeasure scores a display by the belief-weighted KL
// divergence between the observed distributions of believed-about columns
// and the user's expected distributions. Displays over columns the user
// holds no beliefs about score 0 (nothing to be surprised by). It belongs
// to the Peculiarity facet — surprise is subjective anomaly.
type SurprisingnessMeasure struct {
	// Beliefs is the user's belief base; a nil base always scores 0.
	Beliefs *BeliefBase
	// MeasureName allows several users' measures to coexist in one
	// registry; "" means "surprisingness".
	MeasureName string
}

// Name implements Measure.
func (m SurprisingnessMeasure) Name() string {
	if m.MeasureName != "" {
		return m.MeasureName
	}
	return "surprisingness"
}

// Class implements Measure.
func (SurprisingnessMeasure) Class() Class { return Peculiarity }

// Score implements Measure.
func (m SurprisingnessMeasure) Score(ctx *Context) float64 {
	if m.Beliefs == nil || ctx.Display == nil {
		return 0
	}
	total, weight := 0.0, 0.0
	for _, dist := range ctx.Distributions() {
		bel, ok := m.Beliefs.get(dist.Column)
		if !ok {
			continue
		}
		observed := make(map[string]float64, len(dist.Keys))
		for i, k := range dist.Keys {
			observed[k] = dist.P[i]
		}
		po, pe := stats.AlignedDistributions(observed, bel.Expected)
		total += bel.Confidence * stats.KLDivergence(po, pe, 1e-6)
		weight += bel.Confidence
	}
	if weight == 0 {
		return 0
	}
	return total / weight
}

// LearnBeliefs builds a belief base from a reference display — "the user
// has internalized the dataset's overall shape" — so that surprisingness
// against it behaves like an expectation-calibrated deviation measure.
// Columns with more than maxCardinality distinct values are skipped
// (users do not hold per-value beliefs about packet ids).
func LearnBeliefs(ctx *Context, maxCardinality int, confidence float64) (*BeliefBase, error) {
	if ctx == nil || ctx.Display == nil {
		return nil, fmt.Errorf("measures: LearnBeliefs needs a display")
	}
	if maxCardinality <= 0 {
		maxCardinality = 32
	}
	base := NewBeliefBase()
	prof := ctx.Display.GetProfile()
	for _, cp := range prof.Columns {
		if cp.Distinct > maxCardinality {
			continue
		}
		expected := make(map[string]float64, len(cp.Freq))
		for k, v := range cp.Freq {
			expected[k] = v
		}
		base.Add(Belief{Column: cp.Name, Expected: expected, Confidence: confidence})
	}
	if len(base.Columns()) == 0 {
		return nil, fmt.Errorf("measures: no learnable columns (all exceed cardinality %d)", maxCardinality)
	}
	return base, nil
}
