package session

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/atomicio"
	"repro/internal/dataset"
	"repro/internal/engine"
)

// The log format mirrors the REACT-IDA benchmark's design: it records each
// session's action sequence (with the parent display each action was
// executed from) so that every recorded session can be fully reconstructed
// by re-execution against the original datasets, rather than storing
// materialized displays.

// LogFile is the on-disk JSON envelope of a session repository.
type LogFile struct {
	// Version guards future format evolution.
	Version int          `json:"version"`
	Session []LogSession `json:"sessions"`
}

// LogSession serializes one session.
type LogSession struct {
	ID         string    `json:"id"`
	Analyst    string    `json:"analyst"`
	Dataset    string    `json:"dataset"`
	Successful bool      `json:"successful"`
	Summary    string    `json:"summary,omitempty"`
	Steps      []LogStep `json:"steps"`
}

// LogStep serializes one analysis step: which display node (by step index)
// the action was executed from, and the action itself.
type LogStep struct {
	Parent int       `json:"parent"`
	Action LogAction `json:"action"`
}

// LogAction serializes an engine.Action.
type LogAction struct {
	Type       string         `json:"type"`
	Predicates []LogPredicate `json:"predicates,omitempty"`
	GroupBy    string         `json:"group_by,omitempty"`
	Agg        string         `json:"agg,omitempty"`
	AggColumn  string         `json:"agg_column,omitempty"`
	SortColumn string         `json:"sort_column,omitempty"`
	K          int            `json:"k,omitempty"`
	Ascending  bool           `json:"ascending,omitempty"`
}

// LogPredicate serializes an engine.Predicate.
type LogPredicate struct {
	Column string `json:"column"`
	Op     string `json:"op"`
	Kind   string `json:"kind"`
	Value  string `json:"value"`
}

// EncodeAction converts an action to its log form.
func EncodeAction(a *engine.Action) LogAction {
	la := LogAction{Type: a.Type.String()}
	switch a.Type {
	case engine.ActionFilter:
		for _, p := range a.Predicates {
			la.Predicates = append(la.Predicates, LogPredicate{
				Column: p.Column,
				Op:     p.Op.String(),
				Kind:   p.Operand.Kind.String(),
				Value:  p.Operand.String(),
			})
		}
	case engine.ActionGroup:
		la.GroupBy = a.GroupBy
		la.Agg = a.Agg.String()
		la.AggColumn = a.AggColumn
	case engine.ActionTopK:
		la.SortColumn = a.SortColumn
		la.K = a.K
		la.Ascending = a.Ascending
	}
	return la
}

// DecodeAction converts a log action back to an engine.Action.
func DecodeAction(la LogAction) (*engine.Action, error) {
	t, err := engine.ParseActionType(la.Type)
	if err != nil {
		return nil, err
	}
	a := &engine.Action{Type: t}
	switch t {
	case engine.ActionFilter:
		for _, lp := range la.Predicates {
			op, err := engine.ParseCompareOp(lp.Op)
			if err != nil {
				return nil, err
			}
			kind, err := dataset.ParseKind(lp.Kind)
			if err != nil {
				return nil, err
			}
			v, err := dataset.ParseValue(kind, lp.Value)
			if err != nil {
				return nil, err
			}
			a.Predicates = append(a.Predicates, engine.Predicate{Column: lp.Column, Op: op, Operand: v})
		}
	case engine.ActionGroup:
		agg, err := engine.ParseAggFunc(la.Agg)
		if err != nil {
			return nil, err
		}
		a.GroupBy = la.GroupBy
		a.Agg = agg
		a.AggColumn = la.AggColumn
	case engine.ActionTopK:
		a.SortColumn = la.SortColumn
		a.K = la.K
		a.Ascending = la.Ascending
	}
	return a, nil
}

// Encode converts a session to its log form.
func Encode(s *Session) LogSession {
	ls := LogSession{
		ID:         s.ID,
		Analyst:    s.Analyst,
		Dataset:    s.Dataset,
		Successful: s.Successful,
		Summary:    s.Summary,
	}
	for _, n := range s.byStep[1:] {
		ls.Steps = append(ls.Steps, LogStep{Parent: n.Parent.Step, Action: EncodeAction(n.Action)})
	}
	return ls
}

// Replay reconstructs a session from its log form by re-executing every
// action against the given root display.
func Replay(ls LogSession, root *engine.Display) (*Session, error) {
	s := New(ls.ID, ls.Dataset, root)
	s.Analyst = ls.Analyst
	s.Successful = ls.Successful
	s.Summary = ls.Summary
	for i, step := range ls.Steps {
		a, err := DecodeAction(step.Action)
		if err != nil {
			return nil, fmt.Errorf("session %s step %d: %w", ls.ID, i+1, err)
		}
		parent := s.NodeAt(step.Parent)
		if parent == nil {
			return nil, fmt.Errorf("session %s step %d: parent step %d out of range", ls.ID, i+1, step.Parent)
		}
		if _, err := s.ApplyAt(parent, a); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// WriteLog serializes sessions to JSON.
func WriteLog(w io.Writer, sessions []*Session) error {
	lf := LogFile{Version: 1}
	for _, s := range sessions {
		lf.Session = append(lf.Session, Encode(s))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(lf); err != nil {
		return fmt.Errorf("session: write log: %w", err)
	}
	return nil
}

// ReadLog parses a JSON log. Sessions are returned in log order, not yet
// replayed (datasets may live elsewhere); see Repository.Load.
func ReadLog(r io.Reader) (*LogFile, error) {
	var lf LogFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&lf); err != nil {
		return nil, fmt.Errorf("session: read log: %w", err)
	}
	return &lf, nil
}

// SaveLog writes sessions to a file path. The write is atomic (temp file +
// fsync + rename, see internal/atomicio): a crash or write error mid-save
// leaves any pre-existing log untouched instead of a truncated JSON file,
// and the close error is no longer masked by a doubled Close.
func SaveLog(path string, sessions []*Session) error {
	err := atomicio.WriteFile(path, func(w io.Writer) error {
		return WriteLog(w, sessions)
	})
	if err != nil {
		return fmt.Errorf("session: save log: %w", err)
	}
	return nil
}

// LoadLog reads a log file from a path.
func LoadLog(path string) (*LogFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("session: load log: %w", err)
	}
	defer f.Close()
	return ReadLog(f)
}
