package distance

import (
	"sync"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/session"
)

// Telemetry handles, hoisted so the hot path never touches the registry.
var (
	mMemoHits   = obs.C("distance.memo.hits")
	mMemoMisses = obs.C("distance.memo.misses")
	mMemoWaits  = obs.C("distance.memo.waits")
	mMemoSize   = obs.G("distance.memo.size")
)

// displayPair keys a memoized unordered display-distance lookup.
type displayPair struct{ a, b *engine.Display }

// inflight tracks one in-progress ground-metric computation so that
// concurrent misses on the same pair wait for the first computation
// instead of duplicating it (a singleflight per key).
type inflight struct {
	done chan struct{}
	v    float64
}

// Memo caches display-distance computations across many tree-edit calls.
// Displays repeat heavily across n-contexts (every context of a session
// shares node displays; most contexts contain the dataset's root display),
// so memoizing the display ground metric turns the O(pairs) distance-matrix
// construction from minutes into seconds. Memo is safe for concurrent use;
// concurrent misses on the same pair compute the ground metric exactly
// once.
type Memo struct {
	mu      sync.RWMutex
	m       map[displayPair]float64
	pending map[displayPair]*inflight
	// ground overrides the ground metric; nil means DisplayDistance.
	// Tests inject counting/blocking metrics through it.
	ground func(a, b *engine.Display) float64
}

// NewMemo returns an empty cache.
func NewMemo() *Memo {
	return &Memo{
		m:       make(map[displayPair]float64),
		pending: make(map[displayPair]*inflight),
	}
}

// DisplayDistance is the memoized ground metric.
func (c *Memo) DisplayDistance(a, b *engine.Display) float64 {
	if a == b {
		return 0
	}
	key := displayPair{a, b}
	if uintptrLess(b, a) {
		key = displayPair{b, a}
	}
	c.mu.RLock()
	v, ok := c.m[key]
	c.mu.RUnlock()
	if ok {
		if obs.On() {
			mMemoHits.Inc()
		}
		return v
	}

	// Miss: either claim the computation or wait for whoever did. The
	// cached-value recheck under the write lock closes the window between
	// the RUnlock above and the Lock here.
	c.mu.Lock()
	if v, ok := c.m[key]; ok {
		c.mu.Unlock()
		mMemoHits.Inc()
		return v
	}
	if fl, ok := c.pending[key]; ok {
		c.mu.Unlock()
		mMemoWaits.Inc()
		<-fl.done
		return fl.v
	}
	fl := &inflight{done: make(chan struct{})}
	c.pending[key] = fl
	c.mu.Unlock()

	mMemoMisses.Inc()
	ground := c.ground
	if ground == nil {
		ground = DisplayDistance
	}
	fl.v = ground(a, b)

	c.mu.Lock()
	c.m[key] = fl.v
	delete(c.pending, key)
	size := len(c.m)
	c.mu.Unlock()
	mMemoSize.Set(int64(size))
	close(fl.done)
	return fl.v
}

// uintptrLess gives a stable order over two display pointers so (a,b) and
// (b,a) share one cache slot. Any consistent order works; we compare the
// addresses via fmt-free reflection-free trickery: Go guarantees pointer
// comparability but not ordering, so we fall back to comparing through a
// map-insertion-free identity — the pair is simply stored under both
// orders when ordering is unavailable. To keep it simple and portable we
// order by the displays' row counts and, on ties, keep the given order
// (storing at most two entries per unordered pair, still bounded).
func uintptrLess(a, b *engine.Display) bool {
	return a.NumRows() < b.NumRows()
}

// Size returns the number of cached pairs.
func (c *Memo) Size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// NewMemoizedTreeEdit returns a TreeEdit metric whose display ground metric
// is memoized through the given cache (a nil cache allocates a fresh one).
func NewMemoizedTreeEdit(cache *Memo) TreeEdit {
	if cache == nil {
		cache = NewMemo()
	}
	return TreeEdit{
		NodeDist: func(a, b *session.CtxNode) float64 {
			return 0.5*ActionDistance(a.Action, b.Action) + 0.5*cache.DisplayDistance(a.Display, b.Display)
		},
	}
}
