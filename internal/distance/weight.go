package distance

import "repro/internal/session"

// SumNormalized marks a metric whose value is a raw underlying metric
// divided by the sum of the two operands' weights:
//
//	d(a, b) = raw(a, b) / (Weight(a) + Weight(b))
//
// where raw satisfies the triangle inequality but d itself, in general,
// does not — dividing by operand-dependent denominators breaks it as soon
// as weights differ (take x, z disjoint of size n and y their size-2n
// union: d(x,z)=1 but d(x,y)+d(y,z)=2/3). Metric indexes (internal/
// knn/index) therefore must not apply triangle-inequality pruning to
// values of a SumNormalized metric directly; they detect this interface
// and derive their bounds in the raw space instead, where the inequality
// holds, using per-subtree weight ranges to translate back.
//
// Weight must be a pure function of the context (same context, same
// weight, on every call) and non-negative. A pair whose weights sum to
// zero is degenerate; implementations define d for it directly (TreeEdit
// returns 0 for two empty trees) and raw(a, b) = d(a, b)·(w_a + w_b) = 0
// stays consistent.
type SumNormalized interface {
	Metric
	Weight(c *session.Context) float64
}

// Weight implements SumNormalized: the normalization denominator
// contribution of one context, unit·|tree|. Distance divides the raw
// Zhang-Shasha cost by unit·(|a|+|b|), so raw(a, b) recovers exactly as
// Distance(a, b)·(Weight(a)+Weight(b)) — including the degenerate empty
// cases (empty-vs-empty: 0·0; empty-vs-T: 1·unit·|T|, the cost of
// inserting all of T).
func (m TreeEdit) Weight(c *session.Context) float64 {
	unit := m.InsDelCost
	if unit <= 0 {
		unit = 1
	}
	return unit * float64(len(flatten(c).nodes))
}
