package measures

import (
	"testing"
)

func TestRegistryBuiltins(t *testing.T) {
	r := NewRegistry()
	names := r.Names()
	if len(names) != 8 {
		t.Fatalf("builtin count = %d, want 8", len(names))
	}
	for _, n := range names {
		m, err := r.Get(n)
		if err != nil {
			t.Fatalf("Get(%s): %v", n, err)
		}
		if m.Name() != n {
			t.Errorf("name mismatch: %s vs %s", m.Name(), n)
		}
	}
	if _, err := r.Get("nonexistent"); err == nil {
		t.Error("unknown measure should fail")
	}
}

func TestRegistryByClass(t *testing.T) {
	r := NewRegistry()
	for _, c := range Classes {
		ms := r.ByClass(c)
		if len(ms) != 2 {
			t.Errorf("class %v has %d measures, want 2", c, len(ms))
		}
		for _, m := range ms {
			if m.Class() != c {
				t.Errorf("measure %s misclassified", m.Name())
			}
		}
	}
}

func TestRegistryUserDefined(t *testing.T) {
	r := NewRegistry()
	custom := Func{
		MeasureName:  "always_seven",
		MeasureClass: Peculiarity,
		ScoreFunc:    func(*Context) float64 { return 7 },
	}
	if err := r.Register(custom); err != nil {
		t.Fatal(err)
	}
	got, err := r.Get("always_seven")
	if err != nil {
		t.Fatal(err)
	}
	if s := got.Score(&Context{}); s != 7 {
		t.Errorf("custom score = %v", s)
	}
	if err := r.Register(nil); err == nil {
		t.Error("nil registration should fail")
	}
	if err := r.Register(Func{}); err == nil {
		t.Error("empty-name registration should fail")
	}
	// Func with nil ScoreFunc scores 0 rather than panicking.
	if s := (Func{MeasureName: "noop"}).Score(&Context{}); s != 0 {
		t.Errorf("nil ScoreFunc = %v", s)
	}
}

func TestClassStringRoundTrip(t *testing.T) {
	for _, c := range Classes {
		back, err := ParseClass(c.String())
		if err != nil || back != c {
			t.Errorf("class round trip %v: %v, %v", c, back, err)
		}
	}
	if _, err := ParseClass("Novelty"); err == nil {
		t.Error("unknown class should fail")
	}
}

func TestAllConfigurations(t *testing.T) {
	configs := AllConfigurations()
	if len(configs) != 16 {
		t.Fatalf("configurations = %d, want 16 (the paper's count)", len(configs))
	}
	seen := map[string]bool{}
	for _, I := range configs {
		if len(I) != 4 {
			t.Fatalf("config size = %d, want 4", len(I))
		}
		// One measure per class, in canonical class order.
		for i, c := range Classes {
			if I[i].Class() != c {
				t.Errorf("config %v: position %d is %v, want %v", I.Names(), i, I[i].Class(), c)
			}
		}
		key := I.String()
		if seen[key] {
			t.Errorf("duplicate configuration %s", key)
		}
		seen[key] = true
	}
}

func TestSetHelpers(t *testing.T) {
	I := DefaultSet()
	if len(I) != 4 {
		t.Fatalf("default set size = %d", len(I))
	}
	if I.Index("osf") < 0 || I.Index("nothere") != -1 {
		t.Error("Set.Index wrong")
	}
	if got := I.Names(); got[0] != "variance" {
		t.Errorf("names = %v", got)
	}
}

func TestScoreConvenience(t *testing.T) {
	// Score() builds a throwaway context.
	if got := Score(LogLengthMeasure{}, nil, nil, nil, nil); got != 0 {
		t.Errorf("Score with nil display = %v", got)
	}
}
