// Recommend demonstrates the online use-case the paper targets: a trained
// predictor watches a live analysis session, selects the interestingness
// measure that best matches the analyst's current context, and ranks
// candidate next actions by it — the "analysis recommender" integration
// sketched in the paper's introduction and Section 6.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Train on a simulated session log (the REACT-IDA stand-in).
	fmt.Println("generating benchmark and training the predictor (takes ~a minute)...")
	fw, err := repro.GenerateBenchmark(repro.SimulatorConfig{
		Sessions:      160,
		Analysts:      20,
		DatasetConfig: repro.NetlogConfig{Rows: 2000},
	})
	if err != nil {
		log.Fatal(err)
	}
	// The Normalized comparison method is ~50x cheaper offline and the
	// predictor only needs its labels.
	if err := fw.RunOfflineAnalysis(repro.AnalysisOptions{SkipReference: true}); err != nil {
		log.Fatal(err)
	}
	pred, err := fw.TrainPredictor(repro.DefaultMeasureSet(), repro.Normalized,
		repro.DefaultPredictorConfig(repro.Normalized))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d labeled n-contexts\n\n", pred.TrainingSize())

	// A new analyst starts exploring the port-scan log.
	tables := repro.GenerateDatasets(repro.NetlogConfig{Rows: 2000, Seed: 777})
	live := repro.NewSession("live-analyst", tables[0])
	if _, err := live.Apply(repro.GroupCount("protocol")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("analyst's first step: group by protocol")
	fmt.Println(live.Current().Display.Table)

	if _, err := live.Apply(repro.Filter(repro.Gt("count", repro.Float(100)))); err != nil {
		log.Fatal(err)
	}
	fmt.Println("analyst's second step: keep the heavy protocols")

	// Ask the predictor what is interesting *now* and what to do next.
	recs, ok, err := pred.RecommendNext(live, 5)
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		fmt.Println("the predictor abstained: no sufficiently similar past context")
		fmt.Println("(tighten θ_δ / grow the training log to increase coverage)")
		return
	}
	fmt.Printf("\npredicted interestingness measure for this context: %s\n", recs[0].MeasureName)
	fmt.Println("top recommended next actions under it:")
	for i, rec := range recs {
		fmt.Printf("  %d. %-55s score=%.4f -> %d rows\n",
			i+1, rec.Action.String(), rec.Score, rec.Display.NumRows())
	}
}
