// Package engine implements the IDA execution substrate: analysis actions
// (filter, group-and-aggregate) over dataset.Table values, and the Display
// type representing the "results screen" a user examines after each action
// (Section 2.1 of the paper).
//
// The engine mirrors the action vocabulary of the REACT-UI platform the
// paper's session log was collected on: data filtering, grouping and
// aggregation.
package engine

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
)

// ActionType distinguishes the supported analysis actions.
type ActionType uint8

const (
	// ActionFilter selects the rows of the parent display that satisfy a
	// predicate over one column.
	ActionFilter ActionType = iota
	// ActionGroup groups the parent display's rows by one column and
	// aggregates a second column (or counts rows).
	ActionGroup
	// ActionBack is a pure navigation step: the user backtracks to an
	// earlier display and continues from there. It produces no new data
	// and is represented in session trees by branching, but keeping the
	// type lets logs round-trip UI events faithfully.
	ActionBack
	// ActionTopK keeps the K rows with the largest (or smallest) values
	// of one column — the "top 10 hosts by traffic" idiom of modern
	// analysis UIs, and SQL's ORDER BY ... LIMIT.
	ActionTopK
)

// String returns the action type's log name.
func (t ActionType) String() string {
	switch t {
	case ActionFilter:
		return "filter"
	case ActionGroup:
		return "group"
	case ActionBack:
		return "back"
	case ActionTopK:
		return "topk"
	default:
		return fmt.Sprintf("action(%d)", uint8(t))
	}
}

// ParseActionType inverts ActionType.String.
func ParseActionType(s string) (ActionType, error) {
	switch s {
	case "filter":
		return ActionFilter, nil
	case "group":
		return ActionGroup, nil
	case "back":
		return ActionBack, nil
	case "topk":
		return ActionTopK, nil
	default:
		return 0, fmt.Errorf("engine: unknown action type %q", s)
	}
}

// CompareOp is a filter comparison operator.
type CompareOp uint8

const (
	OpEq CompareOp = iota
	OpNeq
	OpLt
	OpLe
	OpGt
	OpGe
	OpContains
)

// String returns the operator's log syntax.
func (o CompareOp) String() string {
	switch o {
	case OpEq:
		return "=="
	case OpNeq:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpContains:
		return "contains"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// ParseCompareOp inverts CompareOp.String.
func ParseCompareOp(s string) (CompareOp, error) {
	switch s {
	case "==":
		return OpEq, nil
	case "!=":
		return OpNeq, nil
	case "<":
		return OpLt, nil
	case "<=":
		return OpLe, nil
	case ">":
		return OpGt, nil
	case ">=":
		return OpGe, nil
	case "contains":
		return OpContains, nil
	default:
		return 0, fmt.Errorf("engine: unknown compare op %q", s)
	}
}

// AggFunc is an aggregate function for group actions.
type AggFunc uint8

const (
	AggCount AggFunc = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String returns the aggregate's log name.
func (a AggFunc) String() string {
	switch a {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return fmt.Sprintf("agg(%d)", uint8(a))
	}
}

// ParseAggFunc inverts AggFunc.String.
func ParseAggFunc(s string) (AggFunc, error) {
	switch s {
	case "count":
		return AggCount, nil
	case "sum":
		return AggSum, nil
	case "avg":
		return AggAvg, nil
	case "min":
		return AggMin, nil
	case "max":
		return AggMax, nil
	default:
		return 0, fmt.Errorf("engine: unknown aggregate %q", s)
	}
}

// Predicate is a single-column comparison used by filter actions. A filter
// action may conjoin several predicates (e.g. the running example's
// "protocol = HTTP AND time not in business hours").
type Predicate struct {
	Column  string
	Op      CompareOp
	Operand dataset.Value
}

// String renders the predicate in log syntax, e.g. `protocol == "HTTP"`.
func (p Predicate) String() string {
	if p.Operand.Kind == dataset.KindString {
		return fmt.Sprintf("%s %s %q", p.Column, p.Op, p.Operand.Str)
	}
	return fmt.Sprintf("%s %s %s", p.Column, p.Op, p.Operand)
}

// Matches reports whether the value satisfies the predicate.
func (p Predicate) Matches(v dataset.Value) bool {
	switch p.Op {
	case OpEq:
		return v.Compare(p.Operand) == 0
	case OpNeq:
		return v.Compare(p.Operand) != 0
	case OpLt:
		return v.Compare(p.Operand) < 0
	case OpLe:
		return v.Compare(p.Operand) <= 0
	case OpGt:
		return v.Compare(p.Operand) > 0
	case OpGe:
		return v.Compare(p.Operand) >= 0
	case OpContains:
		return strings.Contains(v.String(), p.Operand.String())
	default:
		return false
	}
}

// Action is one analysis step. Exactly the fields relevant to Type are set:
// Predicates for ActionFilter; GroupBy/Agg/AggColumn for ActionGroup.
type Action struct {
	Type ActionType

	// Predicates are conjoined for a filter action.
	Predicates []Predicate

	// GroupBy is the grouping column for a group action.
	GroupBy string
	// Agg is the aggregate function applied per group.
	Agg AggFunc
	// AggColumn is the aggregated column; empty for AggCount.
	AggColumn string

	// SortColumn, K and Ascending configure a top-k action: keep the K
	// rows with the largest SortColumn values (smallest when Ascending).
	SortColumn string
	K          int
	Ascending  bool
}

// NewFilter builds a filter action from one or more predicates.
func NewFilter(preds ...Predicate) *Action {
	return &Action{Type: ActionFilter, Predicates: preds}
}

// NewGroupCount builds a group action counting rows per group.
func NewGroupCount(groupBy string) *Action {
	return &Action{Type: ActionGroup, GroupBy: groupBy, Agg: AggCount}
}

// NewGroupAgg builds a group action aggregating aggColumn per group.
func NewGroupAgg(groupBy string, agg AggFunc, aggColumn string) *Action {
	return &Action{Type: ActionGroup, GroupBy: groupBy, Agg: agg, AggColumn: aggColumn}
}

// NewTopK builds a top-k action keeping the k rows with the largest values
// of column (smallest when ascending).
func NewTopK(column string, k int, ascending bool) *Action {
	return &Action{Type: ActionTopK, SortColumn: column, K: k, Ascending: ascending}
}

// String renders the action in log syntax, the format also used by the
// action ground metric of the session distance.
func (a *Action) String() string {
	switch a.Type {
	case ActionFilter:
		parts := make([]string, len(a.Predicates))
		for i, p := range a.Predicates {
			parts[i] = p.String()
		}
		return "filter[" + strings.Join(parts, " && ") + "]"
	case ActionGroup:
		if a.Agg == AggCount {
			return fmt.Sprintf("group[%s].count()", a.GroupBy)
		}
		return fmt.Sprintf("group[%s].%s(%s)", a.GroupBy, a.Agg, a.AggColumn)
	case ActionBack:
		return "back[]"
	case ActionTopK:
		dir := "desc"
		if a.Ascending {
			dir = "asc"
		}
		return fmt.Sprintf("topk[%s %s %d]", a.SortColumn, dir, a.K)
	default:
		return "unknown[]"
	}
}

// Columns returns the set of column names the action touches, used by the
// action ground metric.
func (a *Action) Columns() []string {
	switch a.Type {
	case ActionFilter:
		out := make([]string, 0, len(a.Predicates))
		seen := map[string]bool{}
		for _, p := range a.Predicates {
			if !seen[p.Column] {
				seen[p.Column] = true
				out = append(out, p.Column)
			}
		}
		return out
	case ActionGroup:
		if a.AggColumn != "" && a.AggColumn != a.GroupBy {
			return []string{a.GroupBy, a.AggColumn}
		}
		return []string{a.GroupBy}
	case ActionTopK:
		return []string{a.SortColumn}
	default:
		return nil
	}
}

// Equal reports structural equality of two actions.
func (a *Action) Equal(b *Action) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Type != b.Type {
		return false
	}
	switch a.Type {
	case ActionFilter:
		if len(a.Predicates) != len(b.Predicates) {
			return false
		}
		for i := range a.Predicates {
			pa, pb := a.Predicates[i], b.Predicates[i]
			if pa.Column != pb.Column || pa.Op != pb.Op || !pa.Operand.Equal(pb.Operand) {
				return false
			}
		}
		return true
	case ActionGroup:
		return a.GroupBy == b.GroupBy && a.Agg == b.Agg && a.AggColumn == b.AggColumn
	case ActionTopK:
		return a.SortColumn == b.SortColumn && a.K == b.K && a.Ascending == b.Ascending
	default:
		return true
	}
}

// Clone returns a deep copy of the action.
func (a *Action) Clone() *Action {
	if a == nil {
		return nil
	}
	cp := *a
	cp.Predicates = append([]Predicate(nil), a.Predicates...)
	return &cp
}
