package engine

import (
	"errors"
	"testing"

	"repro/internal/dataset"
)

func TestExecuteTopKDescending(t *testing.T) {
	root := trafficDisplay(t)
	d, err := Execute(root, NewTopK("length", 3, false))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", d.NumRows())
	}
	col := d.Table.ColumnByName("length")
	// Largest three lengths of the fixture: 9000, 410, 400.
	want := []int64{9000, 410, 400}
	for i, w := range want {
		if col.Ints[i] != w {
			t.Errorf("row %d length = %d, want %d", i, col.Ints[i], w)
		}
	}
	if d.Aggregated {
		t.Error("top-k of a raw display stays raw")
	}
	if d.CoveredRows != 3 || d.OriginRows != 8 {
		t.Errorf("covered/origin = %d/%d", d.CoveredRows, d.OriginRows)
	}
}

func TestExecuteTopKAscending(t *testing.T) {
	root := trafficDisplay(t)
	d, err := Execute(root, NewTopK("length", 2, true))
	if err != nil {
		t.Fatal(err)
	}
	col := d.Table.ColumnByName("length")
	if col.Ints[0] != 60 || col.Ints[1] != 150 {
		t.Errorf("bottom-2 lengths = %v, %v", col.Ints[0], col.Ints[1])
	}
}

func TestExecuteTopKKLargerThanTable(t *testing.T) {
	root := trafficDisplay(t)
	d, err := Execute(root, NewTopK("length", 99, false))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRows() != root.Table.NumRows() {
		t.Errorf("k > rows should keep everything: %d", d.NumRows())
	}
}

func TestExecuteTopKOverAggregatedDisplay(t *testing.T) {
	root := trafficDisplay(t)
	agg, err := Execute(root, NewGroupCount("protocol"))
	if err != nil {
		t.Fatal(err)
	}
	d, err := Execute(agg, NewTopK("count", 2, false))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Aggregated || d.GroupColumn != "protocol" || d.ValueColumn != "count" {
		t.Error("top-k must preserve the aggregation shape")
	}
	if d.NumRows() != 2 {
		t.Fatalf("rows = %d", d.NumRows())
	}
	// HTTP (4) and HTTPS (2) are the two biggest protocol groups.
	if got := d.Table.Cell(0, 0).Str; got != "HTTP" {
		t.Errorf("top group = %q, want HTTP", got)
	}
	vals := d.AggValues()
	if len(vals) != 2 || vals[0] != 4 {
		t.Errorf("agg values = %v", vals)
	}
}

func TestExecuteTopKErrors(t *testing.T) {
	root := trafficDisplay(t)
	if _, err := Execute(root, NewTopK("ghost", 3, false)); !errors.Is(err, ErrUnknownColumn) {
		t.Errorf("unknown column: %v", err)
	}
	if _, err := Execute(root, NewTopK("length", 0, false)); err == nil {
		t.Error("k = 0 must fail")
	}
}

func TestExecuteTopKStableTies(t *testing.T) {
	b := dataset.NewBuilder("ties", dataset.Schema{
		{Name: "id", Kind: dataset.KindInt},
		{Name: "v", Kind: dataset.KindInt},
	})
	for i := 0; i < 6; i++ {
		b.Append(dataset.I(int64(i)), dataset.I(7)) // all values tie
	}
	root := NewRootDisplay(b.MustBuild())
	d1, err := Execute(root, NewTopK("v", 3, false))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Execute(root, NewTopK("v", 3, false))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		a := d1.Table.Cell(i, 0)
		bb := d2.Table.Cell(i, 0)
		if !a.Equal(bb) {
			t.Fatal("tied top-k must be deterministic")
		}
		// Stable sort keeps original order within the tie.
		if !a.Equal(dataset.I(int64(i))) {
			t.Errorf("tie order broken at %d: %v", i, a)
		}
	}
}

func TestTopKActionPlumbing(t *testing.T) {
	a := NewTopK("length", 10, false)
	if a.String() != "topk[length desc 10]" {
		t.Errorf("String = %q", a.String())
	}
	asc := NewTopK("length", 5, true)
	if asc.String() != "topk[length asc 5]" {
		t.Errorf("String = %q", asc.String())
	}
	if got := a.Columns(); len(got) != 1 || got[0] != "length" {
		t.Errorf("Columns = %v", got)
	}
	if !a.Equal(NewTopK("length", 10, false)) {
		t.Error("identical top-k must be Equal")
	}
	if a.Equal(asc) || a.Equal(NewTopK("length", 11, false)) {
		t.Error("different top-k must not be Equal")
	}
	cp := a.Clone()
	if !cp.Equal(a) {
		t.Error("clone broken")
	}
	if tt, err := ParseActionType("topk"); err != nil || tt != ActionTopK {
		t.Error("type round trip broken")
	}
}

func TestEnumerateTopKOption(t *testing.T) {
	root := trafficDisplay(t)
	without := EnumerateActions(root, EnumerateOptions{})
	with := EnumerateActions(root, EnumerateOptions{IncludeTopK: true, TopKSizes: []int{3}})
	for _, a := range without {
		if a.Type == ActionTopK {
			t.Fatal("top-k must be off by default")
		}
	}
	found := false
	for _, a := range with {
		if a.Type == ActionTopK {
			found = true
			if a.K != 3 {
				t.Errorf("k = %d", a.K)
			}
			if _, err := Execute(root, a); err != nil {
				t.Errorf("candidate %s failed: %v", a, err)
			}
		}
	}
	if !found {
		t.Error("IncludeTopK produced no candidates")
	}
}
