package knn

import (
	"repro/internal/knn/index"
	"repro/internal/obs"
	"repro/internal/session"
)

// accTopK adapts the scan's bounded top-k accumulator to the metric
// index's Acc interface. The index offers exact distances only, for every
// element a bound-respecting linear scan would offer, so the (dist, idx)
// total order inside topK makes the kept set — and therefore the
// prediction — bit-identical to the scan's regardless of offer order.
type accTopK struct{ t *topK }

func (a accTopK) Full() bool                { return a.t.full() }
func (a accTopK) Bound() float64            { return a.t.bound() }
func (a accTopK) Add(dist float64, idx int) { a.t.add(dist, idx) }

// contexts returns the training contexts in sample order — the index's
// element numbering, which must match the (dist, index) tie-break keys.
func (c *Classifier) contexts() []*session.Context {
	ctxs := make([]*session.Context, len(c.samples))
	for i, s := range c.samples {
		ctxs[i] = s.Context
	}
	return ctxs
}

// BuildIndex builds a vantage-point index over the training set and
// installs it. Deterministic: the same training set (by content and
// order) always yields the same index. Not safe to call concurrently
// with predictions.
func (c *Classifier) BuildIndex() *index.VP {
	t := index.Build(c.contexts(), c.metric, index.Options{})
	c.SetIndex(t)
	return t
}

// AttachIndex decodes a snapshot-persisted index over this classifier's
// training set and installs it; a validation failure leaves the
// classifier unchanged.
func (c *Classifier) AttachIndex(w *index.Wire) error {
	t, err := index.Decode(w, c.contexts(), c.metric)
	if err != nil {
		return err
	}
	c.SetIndex(t)
	return nil
}

// SetIndex installs an index and marks indexing enabled. A nil index
// marks it enabled-but-absent: scans fall back to linear and count
// knn.index.fallback_linear, which is how a deployment spots a tier
// serving unindexed when it shouldn't. Not safe to call concurrently
// with predictions.
func (c *Classifier) SetIndex(t *index.VP) {
	c.idx = t
	c.idxWanted = true
}

// DisableIndex turns indexing off: scans run linear without counting
// fallbacks (the -index=false operator path, not a degradation).
func (c *Classifier) DisableIndex() {
	c.idx = nil
	c.idxWanted = false
}

// Index returns the installed index, nil when absent.
func (c *Classifier) Index() *index.VP { return c.idx }

// IndexWanted reports whether indexing is enabled (even if the index
// itself is currently absent).
func (c *Classifier) IndexWanted() bool { return c.idxWanted }

// searchInto runs one top-k search — the indexed descent when an index is
// installed, the pruned linear scan otherwise — and reports its work. The
// two paths offer identical candidate sets with identical distances (see
// internal/knn/index and DESIGN.md §12), so everything downstream of the
// accumulator is path-oblivious.
func (c *Classifier) searchInto(query *session.Context, acc *topK, limit float64) index.Stats {
	if c.idx != nil {
		return c.idx.Search(query, accTopK{t: acc}, limit)
	}
	c.scanRange(query, 0, len(c.samples), acc, limit)
	if c.idxWanted && obs.On() {
		index.CountFallbackLinear()
	}
	return index.Stats{Visited: uint64(len(c.samples))}
}
