package eval

import (
	"sort"

	"repro/internal/measures"
	"repro/internal/offline"
)

// GridSpec enumerates the hyper-parameter grid of the paper's Table 4.
type GridSpec struct {
	// Ns are the n-context sizes (paper: 1..11).
	Ns []int
	// Ks are the kNN sizes (paper: 1..40).
	Ks []int
	// ThetaDeltas are the distance thresholds (paper: [0, 0.5]).
	ThetaDeltas []float64
	// ThetaIs are the interestingness thresholds; their scale depends on
	// the comparison method ([0,1] for Reference-Based, [-2.5, 2.5] for
	// Normalized).
	ThetaIs []float64
}

// DefaultGrid returns a moderate grid (a few hundred points) that exposes
// every Figure-5 trend quickly; FullGrid mirrors the paper's >50K search.
func DefaultGrid(method offline.Method) GridSpec {
	g := GridSpec{
		Ns:          []int{1, 2, 3, 5, 7, 9, 11},
		Ks:          []int{1, 3, 5, 9, 15, 25, 40},
		ThetaDeltas: []float64{0.05, 0.1, 0.2, 0.3, 0.5},
	}
	if method == offline.ReferenceBased {
		g.ThetaIs = []float64{0, 0.5, 0.7, 0.92}
	} else {
		g.ThetaIs = []float64{-2.5, 0, 0.7, 1.5}
	}
	return g
}

// FullGrid returns a grid comparable in size to the paper's 50K settings.
func FullGrid(method offline.Method) GridSpec {
	g := GridSpec{}
	for n := 1; n <= 11; n++ {
		g.Ns = append(g.Ns, n)
	}
	for k := 1; k <= 40; k += 2 {
		g.Ks = append(g.Ks, k)
	}
	for d := 0.025; d <= 0.5001; d += 0.025 {
		g.ThetaDeltas = append(g.ThetaDeltas, d)
	}
	if method == offline.ReferenceBased {
		for t := 0.0; t <= 1.0001; t += 0.08 {
			g.ThetaIs = append(g.ThetaIs, t)
		}
	} else {
		for t := -2.5; t <= 2.5001; t += 0.4 {
			g.ThetaIs = append(g.ThetaIs, t)
		}
	}
	return g
}

// Size returns the number of grid points.
func (g GridSpec) Size() int {
	return len(g.Ns) * len(g.Ks) * len(g.ThetaDeltas) * len(g.ThetaIs)
}

// GridPoint is one evaluated configuration.
type GridPoint struct {
	N          int
	K          int
	ThetaDelta float64
	ThetaI     float64
	Metrics    Metrics
}

// GridSearch evaluates every grid point of one (I, method) pair with the
// LOOCV kNN evaluator. EvalSets are built once per n and shared across the
// inner (k, θ_δ, θ_I) sweep; pass a DistanceCache to additionally share
// distance matrices with other sweeps (nil allocates a private one).
func GridSearch(a *offline.Analysis, I measures.Set, method offline.Method, g GridSpec, cache *DistanceCache) []GridPoint {
	if cache == nil {
		cache = NewDistanceCache()
	}
	var out []GridPoint
	for _, n := range g.Ns {
		es := BuildEvalSetCached(a, I, method, n, cache)
		for _, k := range g.Ks {
			for _, td := range g.ThetaDeltas {
				for _, ti := range g.ThetaIs {
					m := es.EvaluateKNN(KNNConfig{K: k, ThetaDelta: td, ThetaI: ti})
					out = append(out, GridPoint{N: n, K: k, ThetaDelta: td, ThetaI: ti, Metrics: m})
				}
			}
		}
	}
	return out
}

// SkylineMinSupport is the minimal number of evaluated samples a grid
// point needs to join the skyline. Without a floor, an extreme θ_I that
// keeps a handful of trivially-predictable samples posts a degenerate
// accuracy=coverage=1 point that dominates the whole frontier — an
// artifact a 757-action log (the paper's) never exhibits but small
// simulated logs can.
const SkylineMinSupport = 30

// Skyline returns the Pareto frontier of the grid points with respect to
// (coverage, accuracy), per the paper's dominance definition: a point with
// coverage x and accuracy y is dominated if another point has coverage
// >= x and accuracy > y. The result is sorted by ascending coverage.
func Skyline(points []GridPoint) []GridPoint {
	// Only points with predictions and non-degenerate support are
	// meaningful.
	minSupport := SkylineMinSupport
	maxSamples := 0
	for _, p := range points {
		if p.Metrics.Samples > maxSamples {
			maxSamples = p.Metrics.Samples
		}
	}
	if maxSamples < minSupport {
		minSupport = maxSamples
	}
	var cands []GridPoint
	for _, p := range points {
		if p.Metrics.Predictions > 0 && p.Metrics.Samples >= minSupport {
			cands = append(cands, p)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Metrics.Coverage != cands[j].Metrics.Coverage {
			return cands[i].Metrics.Coverage > cands[j].Metrics.Coverage
		}
		return cands[i].Metrics.Accuracy > cands[j].Metrics.Accuracy
	})
	var sky []GridPoint
	bestAcc := -1.0
	for _, p := range cands {
		if p.Metrics.Accuracy > bestAcc {
			sky = append(sky, p)
			bestAcc = p.Metrics.Accuracy
		}
	}
	// Ascending coverage for plotting.
	sort.Slice(sky, func(i, j int) bool { return sky[i].Metrics.Coverage < sky[j].Metrics.Coverage })
	return sky
}

// BestByF1TimesCoverage picks a default configuration from a skyline: the
// point maximizing accuracy·coverage (a balanced operating point like the
// defaults the paper chose from its skyline).
func BestByF1TimesCoverage(sky []GridPoint) (GridPoint, bool) {
	if len(sky) == 0 {
		return GridPoint{}, false
	}
	best := sky[0]
	bestV := best.Metrics.Accuracy * best.Metrics.Coverage
	for _, p := range sky[1:] {
		if v := p.Metrics.Accuracy * p.Metrics.Coverage; v > bestV {
			best, bestV = p, v
		}
	}
	return best, true
}
