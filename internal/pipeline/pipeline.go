// Package pipeline defines the typed error contract of the prediction
// pipeline's long-running stages (offline analysis, training, kNN
// prediction, evaluation): when a stage is canceled, times out, or fails
// unrecoverably, callers receive an *Error carrying the stage name, the
// underlying cause, and partial-progress information instead of a bare
// context error, a hang, or a panic.
//
// The package sits below every pipeline subsystem (it depends only on
// internal/obs), so offline, knn, eval and the public facade all tag
// failures through the same type and errors.As(err, &*pipeline.Error)
// works uniformly at every layer.
package pipeline

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/obs"
)

// Fault-family telemetry (see the "Failure model" section of DESIGN.md):
// ctx_canceled counts stage aborts caused by context cancellation or
// deadline expiry, recovered counts panics converted to errors at a
// pipeline boundary.
var (
	mCanceled  = obs.C("faults.ctx_canceled")
	mRecovered = obs.C("faults.panics_recovered")
)

// Error is the typed failure of one pipeline stage.
type Error struct {
	// Stage names the failed stage (e.g. "offline.reference",
	// "knn.predict_all", "api.train").
	Stage string
	// Done is the number of items the stage fully processed before it
	// stopped; in-flight items run to completion, so every counted item
	// either ran fully or not at all.
	Done int
	// Total is the number of items the stage was asked to process. Zero
	// when the stage has no item granularity.
	Total int
	// Err is the underlying cause — typically context.Canceled,
	// context.DeadlineExceeded, or a recovered panic.
	Err error
}

// Error formats the stage, cause, and partial progress.
func (e *Error) Error() string {
	if e.Total > 0 {
		return fmt.Sprintf("pipeline: stage %s: %v (%d/%d items completed)", e.Stage, e.Err, e.Done, e.Total)
	}
	return fmt.Sprintf("pipeline: stage %s: %v", e.Stage, e.Err)
}

// Unwrap exposes the cause to errors.Is/As, so
// errors.Is(err, context.Canceled) keeps working through the wrapper.
func (e *Error) Unwrap() error { return e.Err }

// Canceled reports whether the error (at any wrap depth) is a context
// cancellation or deadline expiry.
func Canceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Wrap tags err with a stage and progress info. A nil err returns nil, and
// an err that is already a *Error is passed through unchanged so the
// innermost (most precise) stage tag wins when stages nest.
func Wrap(stage string, done, total int, err error) error {
	if err == nil {
		return nil
	}
	var pe *Error
	if errors.As(err, &pe) {
		return err
	}
	if Canceled(err) {
		mCanceled.Inc()
	}
	return &Error{Stage: stage, Done: done, Total: total, Err: err}
}

// Recovered converts a recovered panic value into a stage-tagged *Error
// and counts it. Intended for use inside a deferred recover() at pipeline
// boundaries:
//
//	defer func() {
//		if r := recover(); r != nil {
//			err = pipeline.Recovered(stage, r)
//		}
//	}()
func Recovered(stage string, r any) error {
	mRecovered.Inc()
	if err, ok := r.(error); ok {
		return &Error{Stage: stage, Err: fmt.Errorf("recovered panic: %w", err)}
	}
	return &Error{Stage: stage, Err: fmt.Errorf("recovered panic: %v", r)}
}
