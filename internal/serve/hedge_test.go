package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/distance"
	"repro/internal/knn"
	"repro/internal/ring"
)

func TestHedgePacerDelayAndCap(t *testing.T) {
	p := newHedgePacer(0.5, 5*time.Millisecond, 50*time.Millisecond)

	// Before hedgeMinSamples winner latencies, the floor rules.
	if d := p.delay(0); d != 5*time.Millisecond {
		t.Fatalf("cold delay = %v, want the 5ms floor", d)
	}
	for i := 0; i < hedgeMinSamples; i++ {
		p.observeWin(0, 20*time.Millisecond)
	}
	if d := p.delay(0); d < 15*time.Millisecond {
		t.Fatalf("warm delay = %v, want the shard's ~20ms p95", d)
	}
	// The ceiling clamps a pathological p95.
	for i := 0; i < hedgeMinSamples; i++ {
		p.observeWin(1, time.Second)
	}
	if d := p.delay(1); d != 50*time.Millisecond {
		t.Fatalf("ceiled delay = %v, want 50ms", d)
	}
	// Other shards keep their own windows.
	if d := p.delay(2); d != 5*time.Millisecond {
		t.Fatalf("unseen shard delay = %v, want floor", d)
	}

	// Fraction cap: at 0.5, hedges may never exceed half the calls.
	for i := 0; i < 10; i++ {
		p.startCall()
	}
	granted := 0
	for i := 0; i < 10; i++ {
		if p.tryHedge() {
			granted++
		}
	}
	if granted != 5 {
		t.Fatalf("granted %d hedges over 10 calls at fraction 0.5, want 5", granted)
	}
}

// hedgeRing builds a 1-shard / 2-replica tier with an aggressive pacer,
// returning the ring plus the victim (preferred replica) index.
func hedgeRing(t *testing.T, clf *knn.Classifier, info ModelInfo) (*testRing, int, string) {
	t.Helper()
	tr := startRing(t, 1, 2, 2, clf, info, RouterOptions{
		HedgeFraction:   1,
		HedgeDelayFloor: time.Millisecond,
	})
	victim := tr.r.ReplicaGroup(0)[0].Name
	idx, err := strconv.Atoi(strings.TrimPrefix(victim, "n"))
	if err != nil {
		t.Fatalf("unexpected node name %q", victim)
	}
	return tr, idx, victim
}

// TestHedgeLoserCancelledNoLeak pins hedge hygiene under -race: when the
// backup replica wins, the loser's request context is cancelled, its
// goroutine exits (no leak), and the abandoned node is NOT punished by
// the failure machine — the router stopped waiting; the node did not
// fail.
func TestHedgeLoserCancelledNoLeak(t *testing.T) {
	samples := ringTrainingSet(40)
	whole := knn.New(samples, distance.NewMemoizedTreeEdit(nil), knn.Config{K: 3, ThetaDelta: 0.3, Workers: 1})
	info := ModelInfo{Prior: whole.Prior(), Checksum: "cafe", TrainingSize: len(samples)}
	tr, vidx, victim := hedgeRing(t, whole, info)

	// The victim answers candidates calls only after its request context
	// dies (or a long fallback, which would fail the cancellation
	// assertion below).
	var cancelled atomic.Bool
	inner := tr.replicas[vidx].Handler()
	tr.swaps[vidx].set(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/knn/candidates" {
			// Drain the body first: net/http only watches for a client
			// disconnect (and cancels r.Context()) once the request has
			// been fully read.
			_, _ = io.Copy(io.Discard, r.Body)
			select {
			case <-r.Context().Done():
				cancelled.Store(true)
				return
			case <-time.After(5 * time.Second):
			}
		}
		inner.ServeHTTP(w, r)
	}))

	wonBefore := mHedgeWon.Load()
	before := runtime.NumGoroutine()

	q := chainCtx("q", 1, 3)
	rec := post(t, tr.rt.Handler(), "/v1/predict", wireBody(t, false, q))
	if rec.Code != http.StatusOK {
		t.Fatalf("hedged predict: %d %s", rec.Code, rec.Body)
	}
	var got predictResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	want := whole.Predict(q)
	if got.Measure != want.Label || got.OK != want.Covered || got.Fallback != want.Fallback {
		t.Errorf("hedged answer (%q, %v, %v) != whole model (%q, %v, %v)",
			got.Measure, got.OK, got.Fallback, want.Label, want.Covered, want.Fallback)
	}
	if mHedgeWon.Load() == wonBefore {
		t.Fatal("the backup replica's win was not counted (ring.hedge.won)")
	}

	// The loser's request context must die promptly.
	waitUntil := time.Now().Add(3 * time.Second)
	for !cancelled.Load() && time.Now().Before(waitUntil) {
		time.Sleep(2 * time.Millisecond)
	}
	if !cancelled.Load() {
		t.Fatal("losing hedge's request context was never cancelled")
	}

	// Abandonment is censorship, not failure: the slow node keeps its
	// Healthy base state (one abandoned call is far too few latency
	// samples to degrade it, and it must not enter Probation).
	if st := tr.rt.Checker().State(victim); st != ring.Healthy {
		t.Errorf("abandoned node state = %v, want Healthy (no failure report)", st)
	}

	// And the loser goroutine (plus its connection) drains back to the
	// baseline — no leak per hedge.
	tr.rt.httpc.CloseIdleConnections()
	for time.Now().Before(waitUntil) {
		if runtime.NumGoroutine() <= before {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+3 {
		t.Errorf("goroutines %d after hedge vs %d before: loser leaked", g, before)
	}
}

// TestHedgedMergeBitIdentical is the correctness regression for hedging
// on a tie-dense training set: with a pacer aggressive enough to hedge
// nearly every call against a deliberately slow preferred replica, every
// answer must equal the unhedged whole-model scan bit for bit.
func TestHedgedMergeBitIdentical(t *testing.T) {
	samples := ringTrainingSet(60) // many duplicate depths → distance ties
	cfg := knn.Config{K: 3, ThetaDelta: 0.3, Workers: 1}
	whole := knn.New(samples, distance.NewMemoizedTreeEdit(nil), cfg)
	info := ModelInfo{Method: "normalized", K: cfg.K, ThetaDelta: cfg.ThetaDelta,
		TrainingSize: len(samples), Prior: whole.Prior(), Checksum: "cafe"}
	tr, vidx, _ := hedgeRing(t, whole, info)

	// The preferred replica answers, but slowly — the gray case hedging
	// exists for.
	inner := tr.replicas[vidx].Handler()
	tr.swaps[vidx].set(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/knn/candidates" {
			time.Sleep(25 * time.Millisecond)
		}
		inner.ServeHTTP(w, r)
	}))

	firedBefore := mHedgeFired.Load()
	queries := ringQueries()
	for i, q := range queries {
		rec := post(t, tr.rt.Handler(), "/v1/predict", wireBody(t, false, q))
		if rec.Code != http.StatusOK {
			t.Fatalf("query %d: %d %s", i, rec.Code, rec.Body)
		}
		var got predictResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
			t.Fatal(err)
		}
		want := whole.Predict(q)
		if got.Measure != want.Label || got.OK != want.Covered || got.Fallback != want.Fallback {
			t.Errorf("query %d: hedged (%q, ok=%v, fb=%v) != whole (%q, ok=%v, fb=%v)",
				i, got.Measure, got.OK, got.Fallback, want.Label, want.Covered, want.Fallback)
		}
	}
	if mHedgeFired.Load() == firedBefore {
		t.Fatal("no hedge ever fired against a 25ms replica with a 1ms floor")
	}
}
