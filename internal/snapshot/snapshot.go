package snapshot

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"

	"repro/internal/atomicio"
	"repro/internal/offline"
)

// The on-disk envelope is:
//
//	offset  size  field
//	0       8     magic "IDASNAPv"
//	8       4     format version (big-endian uint32)
//	12      4     flags (bit 0: payload is gzip-compressed)
//	16      8     payload length in bytes (big-endian uint64)
//	24      n     payload (JSON-encoded Model, gzipped when flagged)
//	24+n    8     FNV-64a checksum of the payload bytes (big-endian)
//
// Compatibility rule: readers accept any file whose version is <= their
// own Version (within-version additions must be backward-compatible JSON
// field additions); a file written by a newer version fails loudly with
// ErrNewerVersion rather than being half-understood. Corruption anywhere
// in the payload fails the checksum before any JSON is parsed.
const (
	magic = "IDASNAPv"
	// Version is the current snapshot format version.
	Version = 1

	flagGzip = 1 << 0

	// maxPayload bounds the declared payload length so a corrupted or
	// hostile header cannot make the reader allocate unbounded memory.
	maxPayload = 8 << 30
)

// ErrNewerVersion is wrapped by Read when the file was written by a newer
// format version than this build understands.
var ErrNewerVersion = errors.New("snapshot written by a newer format version")

// ErrChecksum is wrapped by Read when the payload bytes do not match the
// stored checksum.
var ErrChecksum = errors.New("snapshot checksum mismatch")

// Model is everything a trained predictor needs to produce bit-identical
// predictions in a fresh process: the hyper-parameters, the measure
// configuration (by name, resolved against the built-in registry on
// load), the per-measure Box-Cox/z-score normalization state, and the
// labeled training contexts with their shared display pool.
//
// All floating-point state is carried as JSON numbers, which Go encodes
// in shortest-exact form and parses back to the identical float64 — the
// format adds no rounding. Non-finite values (NaN/±Inf) are not
// JSON-encodable and make Write fail loudly rather than silently skew a
// restored model.
type Model struct {
	// Method is the offline comparison method name (offline.Method.String).
	Method string `json:"method"`
	// Measures are the measure-configuration names, in order.
	Measures []string `json:"measures"`

	// Hyper-parameters (repro.PredictorConfig).
	N          int     `json:"n"`
	K          int     `json:"k"`
	ThetaDelta float64 `json:"theta_delta"`
	ThetaI     float64 `json:"theta_i"`
	Workers    int     `json:"workers,omitempty"`
	// Fallback is the abstention degradation policy name
	// (knn.FallbackPolicy.String).
	Fallback string `json:"fallback,omitempty"`

	// Norms is the fitted Algorithm-2 normalization state per measure
	// (absent when the model was trained without a normalizer).
	Norms map[string]offline.MeasureNorm `json:"norms,omitempty"`

	// Displays is the shared display pool Sample contexts reference.
	Displays []*WireDisplay `json:"displays,omitempty"`
	// Samples is the labeled training set, in training order.
	Samples []SampleRec `json:"samples"`
}

// SampleRec is one serialized training sample: the n-context plus the
// label state the kNN vote reads.
type SampleRec struct {
	Context *WireContext `json:"context"`
	Labels  []string     `json:"labels,omitempty"`
	Best    float64      `json:"best,omitempty"`
}

// Write serializes the model to w in the versioned envelope.
func Write(w io.Writer, m *Model) error {
	raw, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("snapshot: encode model: %w", err)
	}
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	if _, err := zw.Write(raw); err != nil {
		return fmt.Errorf("snapshot: compress: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("snapshot: compress: %w", err)
	}
	payload := zbuf.Bytes()

	var head [24]byte
	copy(head[:8], magic)
	binary.BigEndian.PutUint32(head[8:12], Version)
	binary.BigEndian.PutUint32(head[12:16], flagGzip)
	binary.BigEndian.PutUint64(head[16:24], uint64(len(payload)))
	if _, err := w.Write(head[:]); err != nil {
		return fmt.Errorf("snapshot: write header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("snapshot: write payload: %w", err)
	}
	h := fnv.New64a()
	h.Write(payload)
	var sum [8]byte
	binary.BigEndian.PutUint64(sum[:], h.Sum64())
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("snapshot: write checksum: %w", err)
	}
	return nil
}

// Read parses a snapshot: the model envelope plus full validation of any
// trailing sections (see section.go), whose contents are discarded. Use
// ReadSections to keep them. Validating the tail even when it's unwanted
// keeps Read's contract whole-file: a snapshot Read accepts has no
// corrupt byte anywhere, which the replica snapshot-push handler and the
// corruption tests rely on.
func Read(r io.Reader) (*Model, error) {
	m, _, err := ReadSections(r)
	return m, err
}

// readModel parses the model envelope alone: magic and version checks
// first, then the payload checksum, and only then the JSON decode. It
// consumes exactly the envelope's bytes, leaving the reader at the first
// trailing section (or EOF).
func readModel(r io.Reader) (*Model, error) {
	var head [24]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, fmt.Errorf("snapshot: read header: %w", err)
	}
	if string(head[:8]) != magic {
		return nil, fmt.Errorf("snapshot: bad magic %q (not a predictor snapshot)", head[:8])
	}
	version := binary.BigEndian.Uint32(head[8:12])
	if version > Version {
		return nil, fmt.Errorf("snapshot: file version %d, this build reads <= %d: %w", version, Version, ErrNewerVersion)
	}
	flags := binary.BigEndian.Uint32(head[12:16])
	if flags&^uint32(flagGzip) != 0 {
		// The header is outside the payload checksum; refusing unknown
		// bits (a future format's feature or a flipped header byte) beats
		// silently misreading either.
		return nil, fmt.Errorf("snapshot: unknown flags %#x (corrupt header or newer format): %w", flags&^uint32(flagGzip), ErrNewerVersion)
	}
	n := binary.BigEndian.Uint64(head[16:24])
	if n > maxPayload {
		return nil, fmt.Errorf("snapshot: declared payload length %d exceeds the %d-byte cap", n, int64(maxPayload))
	}
	// Grow the buffer as bytes actually arrive instead of trusting the
	// declared length up front: a corrupt header claiming gigabytes must
	// fail on the short read, not on the allocation.
	payload, err := io.ReadAll(io.LimitReader(r, int64(n)))
	if err != nil {
		return nil, fmt.Errorf("snapshot: read payload: %w", err)
	}
	if uint64(len(payload)) != n {
		return nil, fmt.Errorf("snapshot: payload truncated: %d of %d declared bytes", len(payload), n)
	}
	var sum [8]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return nil, fmt.Errorf("snapshot: read checksum: %w", err)
	}
	h := fnv.New64a()
	h.Write(payload)
	if got, want := h.Sum64(), binary.BigEndian.Uint64(sum[:]); got != want {
		return nil, fmt.Errorf("snapshot: payload hash %016x, stored %016x: %w", got, want, ErrChecksum)
	}

	raw := payload
	if flags&flagGzip != 0 {
		zr, err := gzip.NewReader(bytes.NewReader(payload))
		if err != nil {
			return nil, fmt.Errorf("snapshot: decompress: %w", err)
		}
		raw, err = io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("snapshot: decompress: %w", err)
		}
		if err := zr.Close(); err != nil {
			return nil, fmt.Errorf("snapshot: decompress: %w", err)
		}
	}
	var m Model
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("snapshot: decode model: %w", err)
	}
	return &m, nil
}

// Save writes the model to a file path atomically (temp file + fsync +
// rename, see internal/atomicio): a crash or write error mid-save never
// leaves a truncated snapshot visible.
func Save(path string, m *Model) error {
	err := atomicio.WriteFile(path, func(w io.Writer) error {
		return Write(w, m)
	})
	if err != nil {
		return fmt.Errorf("snapshot: save: %w", err)
	}
	return nil
}

// Load reads a snapshot from a file path.
func Load(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: load: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// FileChecksum hashes the whole snapshot file (envelope included) with
// FNV-64a and returns it as 16 hex digits. This is the identity the
// replicated serving tier compares across processes: two replicas serve
// the same model iff their snapshot files hash equal, and the repair loop
// (DESIGN.md §11) pushes the router's copy to any replica whose /v1/model
// reports a different value. It is distinct from the envelope's internal
// payload checksum, which only guards one file against corruption.
func FileChecksum(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", fmt.Errorf("snapshot: checksum: %w", err)
	}
	defer f.Close()
	h := fnv.New64a()
	if _, err := io.Copy(h, f); err != nil {
		return "", fmt.Errorf("snapshot: checksum: %w", err)
	}
	return fmt.Sprintf("%016x", h.Sum64()), nil
}
