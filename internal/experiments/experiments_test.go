package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/netlog"
	"repro/internal/offline"
	"repro/internal/simulate"
)

var (
	runnerOnce sync.Once
	runnerErr  error
	runnerBuf  *bytes.Buffer
	runnerVal  *Runner
)

// tinyRunner builds one shared quick-mode runner for all tests here.
func tinyRunner(t *testing.T) (*Runner, *bytes.Buffer) {
	t.Helper()
	runnerOnce.Do(func() {
		runnerBuf = &bytes.Buffer{}
		cfg := simulate.Config{
			Analysts:      8,
			Sessions:      56,
			SuccessRate:   0.5,
			Seed:          33,
			DatasetConfig: netlog.Config{Rows: 1000},
		}
		runnerVal, runnerErr = Setup(runnerBuf, cfg, 25, true)
	})
	if runnerErr != nil {
		t.Fatal(runnerErr)
	}
	return runnerVal, runnerBuf
}

func TestSetupPrintsBenchmarkSummary(t *testing.T) {
	_, buf := tinyRunner(t)
	out := buf.String()
	if !strings.Contains(out, "benchmark: 56 sessions") {
		t.Errorf("missing benchmark summary:\n%s", out)
	}
	if !strings.Contains(out, "offline analysis:") {
		t.Errorf("missing analysis summary:\n%s", out)
	}
}

func TestRunAllExperiments(t *testing.T) {
	r, buf := tinyRunner(t)
	if err := r.Run("all"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wantSections := []string{
		"Table 2 —", "Figure 2 —", "Figure 3 —",
		"pairwise measure correlations", "churn within sessions",
		"agreement between the comparison methods",
		"Table 3 —", "Table 4 —", "Table 5 —", "Figure 4 —", "Figure 5 —",
	}
	for _, w := range wantSections {
		if !strings.Contains(out, w) {
			t.Errorf("report missing section %q", w)
		}
	}
	// Table 5 must list all four models for both methods.
	for _, model := range []string{"RANDOM", "BestSM", "I-SVM", "I-kNN"} {
		if strings.Count(out, model) < 2 {
			t.Errorf("model %s missing from Table 5", model)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	r, _ := tinyRunner(t)
	if err := r.Run("table99"); err == nil {
		t.Error("unknown experiment must fail")
	}
}

func TestConfigsQuickVsFull(t *testing.T) {
	r, _ := tinyRunner(t)
	if got := len(r.Configs()); got != 4 {
		t.Errorf("quick configs = %d, want 4", got)
	}
	r2 := NewRunner(r.Repo, r.Analysis, &bytes.Buffer{}, false, 1)
	if got := len(r2.Configs()); got != 16 {
		t.Errorf("full configs = %d, want 16", got)
	}
}

func TestDefaultKNNMatchesTable4(t *testing.T) {
	n, cfg := defaultKNN(offline.ReferenceBased)
	if n != 3 || cfg.K != 3 || cfg.ThetaDelta != 0.2 || cfg.ThetaI != 0.92 {
		t.Errorf("RB default = n=%d %+v", n, cfg)
	}
	n, cfg = defaultKNN(offline.Normalized)
	if n != 2 || cfg.K != 3 || cfg.ThetaDelta != 0.1 || cfg.ThetaI != 0.7 {
		t.Errorf("Norm default = n=%d %+v", n, cfg)
	}
}

func TestEveryOther(t *testing.T) {
	got := everyOther([]float64{1, 2, 3, 4, 5})
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Errorf("everyOther = %v", got)
	}
	if everyOther(nil) != nil {
		t.Error("empty input")
	}
}
