package distance

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/session"
)

func packetRoot(t *testing.T) *engine.Display {
	t.Helper()
	b := dataset.NewBuilder("pkts", dataset.Schema{
		{Name: "protocol", Kind: dataset.KindString},
		{Name: "dst_ip", Kind: dataset.KindString},
		{Name: "hour", Kind: dataset.KindInt},
	})
	rows := []struct {
		p, ip string
		h     int64
	}{
		{"HTTP", "a", 9}, {"HTTP", "a", 21}, {"HTTP", "b", 22}, {"HTTP", "b", 23},
		{"HTTPS", "c", 10}, {"DNS", "d", 11}, {"SSH", "e", 12}, {"SSH", "e", 13},
	}
	for _, r := range rows {
		b.Append(dataset.S(r.p), dataset.S(r.ip), dataset.I(r.h))
	}
	return engine.NewRootDisplay(b.MustBuild())
}

func sessionWith(t *testing.T, root *engine.Display, actions ...*engine.Action) *session.Session {
	t.Helper()
	s := session.New("s", "pkts", root)
	for _, a := range actions {
		if _, err := s.Apply(a); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func ctxAtEnd(t *testing.T, s *session.Session, n int) *session.Context {
	t.Helper()
	st, err := s.StateAt(s.Steps())
	if err != nil {
		t.Fatal(err)
	}
	return session.Extract(st, n)
}

func TestActionDistanceProperties(t *testing.T) {
	f1 := engine.NewFilter(engine.Predicate{Column: "protocol", Op: engine.OpEq, Operand: dataset.S("HTTP")})
	f1b := engine.NewFilter(engine.Predicate{Column: "protocol", Op: engine.OpEq, Operand: dataset.S("HTTP")})
	f2 := engine.NewFilter(engine.Predicate{Column: "protocol", Op: engine.OpEq, Operand: dataset.S("SSH")})
	f3 := engine.NewFilter(engine.Predicate{Column: "hour", Op: engine.OpGt, Operand: dataset.I(19)})
	g1 := engine.NewGroupCount("protocol")
	g2 := engine.NewGroupCount("dst_ip")

	if got := ActionDistance(f1, f1b); got != 0 {
		t.Errorf("identical actions distance = %v", got)
	}
	if got := ActionDistance(f1, g1); got != 1 {
		t.Errorf("cross-type distance = %v, want 1", got)
	}
	// Same column, different operand < different column.
	dSameCol := ActionDistance(f1, f2)
	dDiffCol := ActionDistance(f1, f3)
	if dSameCol >= dDiffCol {
		t.Errorf("same-column filters should be closer: %v vs %v", dSameCol, dDiffCol)
	}
	if d := ActionDistance(g1, g2); d <= 0 || d > 1 {
		t.Errorf("different group columns = %v", d)
	}
	if got := ActionDistance(nil, nil); got != 0 {
		t.Errorf("nil-nil = %v", got)
	}
	if got := ActionDistance(f1, nil); got != 1 {
		t.Errorf("nil mismatch = %v", got)
	}
	// Symmetry.
	if ActionDistance(f1, f3) != ActionDistance(f3, f1) {
		t.Error("action distance must be symmetric")
	}
}

func TestDisplayDistanceProperties(t *testing.T) {
	root := packetRoot(t)
	http, err := engine.Execute(root, engine.NewFilter(engine.Predicate{Column: "protocol", Op: engine.OpEq, Operand: dataset.S("HTTP")}))
	if err != nil {
		t.Fatal(err)
	}
	ssh, err := engine.Execute(root, engine.NewFilter(engine.Predicate{Column: "protocol", Op: engine.OpEq, Operand: dataset.S("SSH")}))
	if err != nil {
		t.Fatal(err)
	}
	agg, err := engine.Execute(root, engine.NewGroupCount("protocol"))
	if err != nil {
		t.Fatal(err)
	}

	if got := DisplayDistance(root, root); got != 0 {
		t.Errorf("self distance = %v", got)
	}
	for _, pair := range [][2]*engine.Display{{root, http}, {http, ssh}, {root, agg}} {
		d := DisplayDistance(pair[0], pair[1])
		if d < 0 || d > 1 {
			t.Errorf("distance out of range: %v", d)
		}
		if d != DisplayDistance(pair[1], pair[0]) {
			t.Error("display distance must be symmetric")
		}
	}
	// A raw slice is closer to another raw slice than to an aggregation.
	if DisplayDistance(http, ssh) >= DisplayDistance(http, agg) {
		t.Errorf("agg-shape mismatch should dominate: raw-raw %v vs raw-agg %v",
			DisplayDistance(http, ssh), DisplayDistance(http, agg))
	}
	if got := DisplayDistance(nil, nil); got != 0 {
		t.Errorf("nil-nil = %v", got)
	}
	if got := DisplayDistance(root, nil); got != 1 {
		t.Errorf("nil mismatch = %v", got)
	}
}

func TestTreeEditIdentityAndSymmetry(t *testing.T) {
	root := packetRoot(t)
	s1 := sessionWith(t, root,
		engine.NewGroupCount("protocol"),
	)
	s2 := sessionWith(t, root,
		engine.NewFilter(engine.Predicate{Column: "protocol", Op: engine.OpEq, Operand: dataset.S("HTTP")}),
		engine.NewGroupCount("dst_ip"),
	)
	c1 := ctxAtEnd(t, s1, 3)
	c2 := ctxAtEnd(t, s2, 5)
	m := TreeEdit{}
	if got := m.Distance(c1, c1); got != 0 {
		t.Errorf("self distance = %v", got)
	}
	d12, d21 := m.Distance(c1, c2), m.Distance(c2, c1)
	if math.Abs(d12-d21) > 1e-12 {
		t.Errorf("asymmetric: %v vs %v", d12, d21)
	}
	if d12 <= 0 || d12 > 1 {
		t.Errorf("distance out of range: %v", d12)
	}
}

func TestTreeEditSimilarVsDissimilar(t *testing.T) {
	root := packetRoot(t)
	// Two near-identical analysis paths (same filter, slightly different
	// threshold) vs a completely different path.
	a := sessionWith(t, root,
		engine.NewFilter(
			engine.Predicate{Column: "protocol", Op: engine.OpEq, Operand: dataset.S("HTTP")},
			engine.Predicate{Column: "hour", Op: engine.OpGt, Operand: dataset.I(19)},
		))
	b := sessionWith(t, root,
		engine.NewFilter(
			engine.Predicate{Column: "protocol", Op: engine.OpEq, Operand: dataset.S("HTTP")},
			engine.Predicate{Column: "hour", Op: engine.OpGt, Operand: dataset.I(20)},
		))
	c := sessionWith(t, root, engine.NewGroupCount("dst_ip"))

	m := TreeEdit{}
	ca, cb, cc := ctxAtEnd(t, a, 3), ctxAtEnd(t, b, 3), ctxAtEnd(t, c, 3)
	dSimilar := m.Distance(ca, cb)
	dDifferent := m.Distance(ca, cc)
	if dSimilar >= dDifferent {
		t.Errorf("similar paths %v should be closer than different paths %v", dSimilar, dDifferent)
	}
}

func TestTreeEditSizeMismatchCostsInsertions(t *testing.T) {
	root := packetRoot(t)
	short := sessionWith(t, root, engine.NewGroupCount("protocol"))
	long := sessionWith(t, root,
		engine.NewGroupCount("protocol"))
	if _, err := long.Apply(engine.NewFilter(engine.Predicate{Column: "count", Op: engine.OpGt, Operand: dataset.F(1)})); err != nil {
		t.Fatal(err)
	}
	m := TreeEdit{}
	cs := ctxAtEnd(t, short, 3)
	cl := ctxAtEnd(t, long, 5)
	if d := m.Distance(cs, cl); d <= 0 {
		t.Errorf("prefix context should still differ: %v", d)
	}
}

func TestMemoizedTreeEditMatchesPlain(t *testing.T) {
	root := packetRoot(t)
	sessions := []*session.Session{
		sessionWith(t, root, engine.NewGroupCount("protocol")),
		sessionWith(t, root, engine.NewGroupCount("dst_ip")),
		sessionWith(t, root,
			engine.NewFilter(engine.Predicate{Column: "protocol", Op: engine.OpEq, Operand: dataset.S("HTTP")}),
			engine.NewGroupCount("dst_ip")),
	}
	var ctxs []*session.Context
	for _, s := range sessions {
		ctxs = append(ctxs, ctxAtEnd(t, s, 5))
	}
	plain := TreeEdit{}
	memo := NewMemo()
	cached := NewMemoizedTreeEdit(memo)
	for i := range ctxs {
		for j := range ctxs {
			p := plain.Distance(ctxs[i], ctxs[j])
			c := cached.Distance(ctxs[i], ctxs[j])
			if math.Abs(p-c) > 1e-12 {
				t.Errorf("memoized differs at (%d,%d): %v vs %v", i, j, p, c)
			}
		}
	}
	if memo.Size() == 0 {
		t.Error("memo should have cached display pairs")
	}
}

func TestLastActionMetric(t *testing.T) {
	root := packetRoot(t)
	a := sessionWith(t, root, engine.NewGroupCount("protocol"))
	b := sessionWith(t, root,
		engine.NewFilter(engine.Predicate{Column: "hour", Op: engine.OpGt, Operand: dataset.I(10)}),
		engine.NewGroupCount("protocol"))
	m := LastActionMetric{}
	ca, cb := ctxAtEnd(t, a, 5), ctxAtEnd(t, b, 5)
	// Both end with group[protocol].count(); the flat metric sees only
	// that, so the distance reflects just the display-content gap.
	if d := m.Distance(ca, cb); d > 0.5 {
		t.Errorf("same last action should be close under the flat metric, got %v", d)
	}
	if d := m.Distance(ca, ca); d != 0 {
		t.Errorf("self distance = %v", d)
	}
	if m.Name() != "last-action" || (TreeEdit{}).Name() != "tree-edit" {
		t.Error("metric names wrong")
	}
}

func TestTreeEditTriangleInequalityOnSample(t *testing.T) {
	// TED with unit ins/del and a metric ground cost satisfies the
	// triangle inequality; spot-check on a handful of contexts.
	root := packetRoot(t)
	actions := []*engine.Action{
		engine.NewGroupCount("protocol"),
		engine.NewGroupCount("dst_ip"),
		engine.NewFilter(engine.Predicate{Column: "protocol", Op: engine.OpEq, Operand: dataset.S("HTTP")}),
	}
	var ctxs []*session.Context
	for _, a := range actions {
		ctxs = append(ctxs, ctxAtEnd(t, sessionWith(t, root, a), 3))
	}
	m := TreeEdit{}
	for i := range ctxs {
		for j := range ctxs {
			for k := range ctxs {
				dij := m.Distance(ctxs[i], ctxs[j])
				djk := m.Distance(ctxs[j], ctxs[k])
				dik := m.Distance(ctxs[i], ctxs[k])
				if dik > dij+djk+1e-9 {
					t.Errorf("triangle violated: d(%d,%d)=%v > %v + %v", i, k, dik, dij, djk)
				}
			}
		}
	}
}

// TestDisplayDistanceBitDeterministic pins the ground metric as a pure
// function: repeated calls on the same pair must agree to the last bit
// (totalVariation once summed in randomized map order, which made every
// matrix fill ULP-nondeterministic — the bug this test guards against).
func TestDisplayDistanceBitDeterministic(t *testing.T) {
	root := packetRoot(t)
	http, err := engine.Execute(root, engine.NewFilter(engine.Predicate{Column: "protocol", Op: engine.OpEq, Operand: dataset.S("HTTP")}))
	if err != nil {
		t.Fatal(err)
	}
	agg, err := engine.Execute(root, engine.NewGroupCount("protocol"))
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]*engine.Display{{root, http}, {http, agg}, {root, agg}} {
		first := DisplayDistance(pair[0], pair[1])
		for i := 0; i < 50; i++ {
			if got := DisplayDistance(pair[0], pair[1]); got != first {
				t.Fatalf("call %d: %v != %v (nondeterministic ground metric)", i, got, first)
			}
		}
	}
}

// TestDisplayDistanceReflexiveWithDuplicateColumns pins the fix for the
// snapshot-reload prediction drift: an aggregated display can carry two
// columns with one name (e.g. grouping by "count" into a count aggregate),
// and pairing shared columns through a plain by-name lookup compared both
// duplicates against the same column — making d(x, x) = 0.2 instead of 0.
// In-process the memo's pointer-identity shortcut hid the asymmetry;
// snapshot-decoded displays stopped sharing pointers and exposed it as
// near-threshold kNN predictions flipping after reload.
func TestDisplayDistanceReflexiveWithDuplicateColumns(t *testing.T) {
	mk := func(freqs ...map[string]float64) *engine.Display {
		cols := make([]engine.ColumnProfile, len(freqs))
		for i, f := range freqs {
			cols[i] = engine.ColumnProfile{Name: "count", TopFreq: f}
		}
		return engine.NewSummaryDisplay(1, true, "count", "count", engine.NewProfile(1, cols))
	}
	a := mk(map[string]float64{"37": 1}, map[string]float64{"1": 1})
	b := mk(map[string]float64{"37": 1}, map[string]float64{"1": 1})
	if d := DisplayDistance(a, a); d != 0 {
		t.Fatalf("self distance with duplicate column names = %v, want 0", d)
	}
	if d := DisplayDistance(a, b); d != 0 {
		t.Fatalf("content-identical twin distance = %v, want 0", d)
	}
	// The memoized ground metric must agree with the direct one — the
	// pointer shortcut is only sound when the metric is reflexive.
	memo := NewMemo()
	if d := memo.DisplayDistance(a, b); d != 0 {
		t.Fatalf("memoized twin distance = %v, want 0", d)
	}
	// Swapping the duplicates changes the display: columns pair by
	// (name, occurrence ordinal), in declaration order.
	c := mk(map[string]float64{"1": 1}, map[string]float64{"37": 1})
	d1, d2 := DisplayDistance(a, c), DisplayDistance(c, a)
	if d1 == 0 {
		t.Fatal("swapped duplicate columns should not compare as identical")
	}
	if d1 != d2 {
		t.Fatalf("asymmetric: %v vs %v", d1, d2)
	}
}
