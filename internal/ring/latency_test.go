package ring

import (
	"testing"
	"time"
)

func TestLatencyWindowObserveAndQuantile(t *testing.T) {
	w := NewLatencyWindow(8)
	if w.Count() != 0 || w.EWMA() != 0 || w.Quantile(0.95) != 0 {
		t.Fatal("empty window must report zeroes")
	}
	for i := 1; i <= 8; i++ {
		w.Observe(time.Duration(i) * time.Millisecond)
	}
	if w.Count() != 8 {
		t.Fatalf("count = %d, want 8", w.Count())
	}
	if p50 := w.Quantile(0.5); p50 < 4*time.Millisecond || p50 > 6*time.Millisecond {
		t.Fatalf("p50 = %v, want ~5ms", p50)
	}
	if p95 := w.Quantile(0.95); p95 < 7*time.Millisecond {
		t.Fatalf("p95 = %v, want near the max", p95)
	}
	// The ring buffer evicts oldest: after 8 more large samples, small
	// ones are gone from the quantiles.
	for i := 0; i < 8; i++ {
		w.Observe(100 * time.Millisecond)
	}
	if w.Count() != 8 {
		t.Fatalf("count after wrap = %d, want window size 8", w.Count())
	}
	if p50 := w.Quantile(0.5); p50 != 100*time.Millisecond {
		t.Fatalf("p50 after wrap = %v, want 100ms", p50)
	}
	if w.EWMA() <= 0 {
		t.Fatal("EWMA never updated")
	}
	// nil receivers are inert, not panics.
	var nilw *LatencyWindow
	nilw.Observe(time.Millisecond)
	if nilw.Count() != 0 || nilw.EWMA() != 0 || nilw.Quantile(0.5) != 0 {
		t.Fatal("nil window must report zeroes")
	}
}

// feedLatency reports n identical observations for a node.
func feedLatency(c *Checker, name string, d time.Duration, n int) {
	for i := 0; i < n; i++ {
		c.ReportLatency(name, d)
	}
}

// TestGrayFailureDegradesAndRecovers: a node answering 40x slower than
// its peers becomes Degraded (without any failure report), stays
// routable, and recovers once its latency falls back under half the
// threshold.
func TestGrayFailureDegradesAndRecovers(t *testing.T) {
	r, err := New(threeNodeSpec())
	if err != nil {
		t.Fatal(err)
	}
	c := NewChecker(r, CheckerOptions{})

	feedLatency(c, "a", 500*time.Microsecond, 6)
	feedLatency(c, "b", 500*time.Microsecond, 6)
	if got := c.State("c"); got != Healthy {
		t.Fatalf("no-sample node state = %v, want Healthy", got)
	}
	feedLatency(c, "c", 20*time.Millisecond, 6)
	if got := c.State("c"); got != Degraded {
		t.Fatalf("slow node state = %v, want Degraded", got)
	}
	if got := c.State("a"); got != Healthy {
		t.Fatalf("fast peer state = %v, want Healthy", got)
	}
	if ewma, p95, n := c.Latency("c"); n != 6 || ewma == 0 || p95 < 20*time.Millisecond {
		t.Fatalf("Latency(c) = (%v, %v, %d), want 6 samples around 20ms", ewma, p95, n)
	}

	// The latency overlay rides on top of the failure machine: a request
	// failure still demotes the node exactly as if it were Healthy.
	c.ReportFailure("c")
	if got := c.State("c"); got != Probation {
		t.Fatalf("degraded node after failure = %v, want Probation", got)
	}
	c.ReportSuccess("c")
	// Back to Healthy base — still slow, so Degraded again.
	if got := c.State("c"); got != Degraded {
		t.Fatalf("recovered-but-slow node = %v, want Degraded", got)
	}

	// Fast answers pull the EWMA down; below threshold/2 the node
	// recovers.
	feedLatency(c, "c", 100*time.Microsecond, 30)
	if got := c.State("c"); got != Healthy {
		ewma, _, _ := c.Latency("c")
		t.Fatalf("fast-again node = %v (ewma %v), want Healthy", got, ewma)
	}
}

// TestDegradeFloorSuppressesNoise: sub-millisecond spread must never
// degrade anyone, however large the ratio between peers.
func TestDegradeFloorSuppressesNoise(t *testing.T) {
	r, err := New(threeNodeSpec())
	if err != nil {
		t.Fatal(err)
	}
	c := NewChecker(r, CheckerOptions{})
	feedLatency(c, "a", 50*time.Microsecond, 6)
	feedLatency(c, "b", 50*time.Microsecond, 6)
	feedLatency(c, "c", 900*time.Microsecond, 6) // 18x peers, still < 2ms floor
	for name, st := range c.States() {
		if st != Healthy {
			t.Fatalf("node %s = %v under sub-floor latencies, want Healthy", name, st)
		}
	}
}

// TestDegradedSortsBehindHealthyInOrder: a Degraded replica stays in the
// routing order (and keeps its shard serving) but behind every Healthy
// peer, and ahead of Probation.
func TestDegradedSortsBehindHealthyInOrder(t *testing.T) {
	r, err := New(threeNodeSpec())
	if err != nil {
		t.Fatal(err)
	}
	c := NewChecker(r, CheckerOptions{})

	// Pick a shard and its first-preference replica, then degrade it.
	shard := 0
	group := r.ReplicaGroup(shard)
	slow, fast := group[0].Name, group[1].Name
	third := ""
	for _, n := range r.Nodes() {
		if n.Name != slow && n.Name != fast {
			third = n.Name
		}
	}
	feedLatency(c, fast, 500*time.Microsecond, 6)
	feedLatency(c, third, 500*time.Microsecond, 6)
	feedLatency(c, slow, 50*time.Millisecond, 6)
	if got := c.State(slow); got != Degraded {
		t.Fatalf("state(%s) = %v, want Degraded", slow, got)
	}

	order := c.Order(shard)
	if len(order) != 2 {
		t.Fatalf("order = %v, want both replicas routable", order)
	}
	if order[0].Name != fast || order[1].Name != slow {
		t.Fatalf("order = [%s %s], want the Degraded replica last", order[0].Name, order[1].Name)
	}
	if !c.ShardHealthy(shard) {
		t.Fatal("shard with one Degraded replica reported unhealthy")
	}

	// Probation sorts behind Degraded: fail the fast one once.
	c.ReportFailure(fast)
	order = c.Order(shard)
	if order[0].Name != slow || order[1].Name != fast {
		t.Fatalf("order = [%s %s], want Degraded ahead of Probation", order[0].Name, order[1].Name)
	}
}
