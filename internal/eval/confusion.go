package eval

import (
	"fmt"
	"strings"
)

// Confusion is a per-class confusion matrix over prediction outcomes,
// the diagnostic behind the macro-averaged metrics: rows are true labels,
// columns are predicted labels, plus an abstention column.
type Confusion struct {
	// Classes fixes the row/column order.
	Classes []string
	// Counts[i][j] counts samples with true class i predicted as class j.
	// A sample with tied true labels is attributed like Compute does: to
	// the predicted label when correct, to its primary label otherwise.
	Counts [][]int
	// Abstained[i] counts abstentions per true class.
	Abstained []int
}

// NewConfusion tallies outcomes into a confusion matrix.
func NewConfusion(outcomes []Outcome, classes []string) *Confusion {
	idx := make(map[string]int, len(classes))
	for i, c := range classes {
		idx[c] = i
	}
	cm := &Confusion{
		Classes:   append([]string(nil), classes...),
		Counts:    make([][]int, len(classes)),
		Abstained: make([]int, len(classes)),
	}
	for i := range cm.Counts {
		cm.Counts[i] = make([]int, len(classes))
	}
	for _, o := range outcomes {
		if len(o.Actual) == 0 {
			continue
		}
		truth := o.Actual[0]
		if o.Correct() {
			truth = o.Predicted
		}
		ti, ok := idx[truth]
		if !ok {
			continue
		}
		if !o.Covered {
			cm.Abstained[ti]++
			continue
		}
		pi, ok := idx[o.Predicted]
		if !ok {
			continue
		}
		cm.Counts[ti][pi]++
	}
	return cm
}

// Total returns the number of tallied (covered) predictions.
func (c *Confusion) Total() int {
	n := 0
	for _, row := range c.Counts {
		for _, v := range row {
			n += v
		}
	}
	return n
}

// Diagonal returns the number of correct predictions.
func (c *Confusion) Diagonal() int {
	n := 0
	for i := range c.Counts {
		n += c.Counts[i][i]
	}
	return n
}

// String renders the matrix with aligned columns, truth down the side and
// predictions across the top.
func (c *Confusion) String() string {
	width := 9
	for _, cl := range c.Classes {
		if len(cl)+2 > width {
			width = len(cl) + 2
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%*s", width, "truth\\pred")
	for _, cl := range c.Classes {
		fmt.Fprintf(&b, "%*s", width, cl)
	}
	fmt.Fprintf(&b, "%*s\n", width, "abstain")
	for i, cl := range c.Classes {
		fmt.Fprintf(&b, "%*s", width, cl)
		for j := range c.Classes {
			fmt.Fprintf(&b, "%*d", width, c.Counts[i][j])
		}
		fmt.Fprintf(&b, "%*d\n", width, c.Abstained[i])
	}
	return b.String()
}

// EvaluateKNNDetailed runs the same LOOCV as EvaluateKNN but additionally
// returns the raw outcomes and the confusion matrix.
func (e *EvalSet) EvaluateKNNDetailed(cfg KNNConfig) (Metrics, []Outcome, *Confusion) {
	outcomes := e.knnOutcomes(cfg)
	classes := e.I.Names()
	return Compute(outcomes, classes), outcomes, NewConfusion(outcomes, classes)
}
