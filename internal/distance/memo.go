package distance

import (
	"sync"

	"repro/internal/engine"
	"repro/internal/session"
)

// displayPair keys a memoized unordered display-distance lookup.
type displayPair struct{ a, b *engine.Display }

// Memo caches display-distance computations across many tree-edit calls.
// Displays repeat heavily across n-contexts (every context of a session
// shares node displays; most contexts contain the dataset's root display),
// so memoizing the display ground metric turns the O(pairs) distance-matrix
// construction from minutes into seconds. Memo is safe for concurrent use.
type Memo struct {
	mu sync.RWMutex
	m  map[displayPair]float64
}

// NewMemo returns an empty cache.
func NewMemo() *Memo { return &Memo{m: make(map[displayPair]float64)} }

// DisplayDistance is the memoized ground metric.
func (c *Memo) DisplayDistance(a, b *engine.Display) float64 {
	if a == b {
		return 0
	}
	key := displayPair{a, b}
	if uintptrLess(b, a) {
		key = displayPair{b, a}
	}
	c.mu.RLock()
	v, ok := c.m[key]
	c.mu.RUnlock()
	if ok {
		return v
	}
	v = DisplayDistance(a, b)
	c.mu.Lock()
	c.m[key] = v
	c.mu.Unlock()
	return v
}

// uintptrLess gives a stable order over two display pointers so (a,b) and
// (b,a) share one cache slot. Any consistent order works; we compare the
// addresses via fmt-free reflection-free trickery: Go guarantees pointer
// comparability but not ordering, so we fall back to comparing through a
// map-insertion-free identity — the pair is simply stored under both
// orders when ordering is unavailable. To keep it simple and portable we
// order by the displays' row counts and, on ties, keep the given order
// (storing at most two entries per unordered pair, still bounded).
func uintptrLess(a, b *engine.Display) bool {
	return a.NumRows() < b.NumRows()
}

// Size returns the number of cached pairs.
func (c *Memo) Size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// NewMemoizedTreeEdit returns a TreeEdit metric whose display ground metric
// is memoized through the given cache (a nil cache allocates a fresh one).
func NewMemoizedTreeEdit(cache *Memo) TreeEdit {
	if cache == nil {
		cache = NewMemo()
	}
	return TreeEdit{
		NodeDist: func(a, b *session.CtxNode) float64 {
			return 0.5*ActionDistance(a.Action, b.Action) + 0.5*cache.DisplayDistance(a.Display, b.Display)
		},
	}
}
